// Central straggler-tolerant merger: the receiving end of the fleet.
//
// Each PoP emits cumulative epoch-tagged partials (fleet/partial.h) through
// its ReportEmitter; the merger is the Sink they deliver into. It keeps the
// newest partial per PoP and answers three questions, all as pure functions
// of the current partial set (never of arrival order, so merged output is
// byte-identical whenever the surviving coverage set is identical):
//
//   * merged_pipeline()     — fold the partials into one Pipeline (every
//                             aggregator is a commutative monoid);
//   * coverage()            — per-epoch pops_reporting/pops_expected with an
//                             epoch watermark (max_epoch - grace_epochs):
//                             an epoch past the watermark with missing PoPs
//                             is explicitly degraded, never silently wrong;
//   * pop status            — live / lagging (behind the watermark) / dead
//                             (no partial for heartbeat_timeout_epochs) /
//                             silent (never reported).
//
// Idempotence: a partial is identified by (pop, epoch, sequence). Exact
// replays are duplicates; older sequences are stale (superseded by newer
// cumulative state, e.g. a spool replay arriving after a fresher partial);
// both are dropped and counted. Corrupt partials are counted rejected and
// acknowledged — re-delivering bad bytes forever would wedge the emitter's
// spool, and the counter is the operator's signal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "common/ids.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "control/overload.h"
#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "service/sink.h"
#include "world/world.h"

namespace tamper::fleet {

struct MergerConfig {
  std::uint32_t pops_expected = 3;
  /// Epochs behind max_epoch the watermark sits: stragglers within the
  /// grace window are simply not-yet-late.
  std::uint64_t grace_epochs = 1;
  /// A PoP whose newest partial is this many epochs behind max_epoch is
  /// declared dead (its anycast prefixes have presumably failed over).
  std::uint64_t heartbeat_timeout_epochs = 3;
  std::uint64_t epoch_length_sec = 3600;
  /// Bounded-skew guard: a PoP reporting an epoch further than
  /// max_skew_sec (rounded up to whole epochs) + grace from the fleet
  /// median is counted in skew_detected (metrics only — detection depends
  /// on arrival order, so it never feeds the merged report).
  std::int64_t max_skew_sec = 3;
  /// How many closed epochs the coverage block enumerates.
  std::uint64_t coverage_window_epochs = 8;
  /// Watchdog tuning for the fleet-level anomaly scan run over the merged
  /// trends ring (timeseries_dump / merged_report).
  obs::AnomalyConfig anomaly{};
};

class Merger final : public service::Sink {
 public:
  Merger(const world::World& world, MergerConfig config);
  ~Merger() override;

  /// Sink entry point for PoP emitters (thread-safe; PoPs deliver
  /// concurrently). Returns false only for transport-shaped refusals the
  /// emitter should retry; corrupt payloads are acknowledged + counted.
  bool deliver(const std::string& payload) override;
  [[nodiscard]] std::string describe() const override { return "fleet-merger"; }

  struct Stats {
    std::uint64_t received = 0;       ///< deliver() calls
    std::uint64_t accepted = 0;       ///< partials merged into the state
    std::uint64_t duplicates = 0;     ///< exact (pop, epoch, sequence) replays
    std::uint64_t stale = 0;          ///< older sequence than current state
    std::uint64_t late = 0;           ///< epoch already past the watermark at arrival
    std::uint64_t rejected = 0;       ///< corrupt / unparseable partials
    std::uint64_t skew_detected = 0;  ///< bounded-skew guard trips
  };
  [[nodiscard]] Stats stats() const TAMPER_EXCLUDES(mu_);

  /// Order-invariant coverage snapshot (see analysis::FleetCoverage).
  [[nodiscard]] analysis::FleetCoverage coverage() const TAMPER_EXCLUDES(mu_);

  /// Fold the current partials into one pipeline (ascending PoP id; the
  /// order is irrelevant by the monoid laws but fixed for sanity).
  [[nodiscard]] std::unique_ptr<analysis::Pipeline> merged_pipeline() const
      TAMPER_EXCLUDES(mu_);

  /// Canonical byte image of the merged aggregate state (a checkpoint
  /// encoding with zeroed meta) — what the chaos campaigns byte-compare.
  [[nodiscard]] std::vector<std::uint8_t> merged_state_image() const;

  /// Merged Radar JSON with the fleet coverage section and a trends block
  /// annotated with per-epoch coverage (so a degraded epoch is never read
  /// as a real rate drop) and the fleet-level anomaly scan.
  [[nodiscard]] std::string merged_report(analysis::ReportOptions options = {}) const;

  /// Standalone `tamper-timeseries/1` JSON: a "fleet" scope (the merged
  /// trends ring, coverage notes, and the anomaly scan — coverage-degraded
  /// epochs are suppressed, not scored) plus one "pop:<id>" scope per
  /// reporting PoP. Pure function of the current partial set.
  [[nodiscard]] std::string timeseries_dump(bool pretty = true) const;

  /// The fleet-scope trends view shared by merged_report, timeseries_dump
  /// and `tamperscope top`: coverage notes for the closed-epoch window plus
  /// the anomaly scan over the merged ring, with degraded epochs = coverage
  /// degradation ∪ epochs where the merged degraded-input series rose.
  struct FleetTrends {
    std::vector<obs::EpochCoverageNote> epochs;
    obs::AnomalyScan scan;
  };
  /// Convenience form over the current partial set (folds a fresh merged
  /// pipeline; callers that already hold one use the two-argument overload).
  [[nodiscard]] FleetTrends fleet_trends() const;
  [[nodiscard]] FleetTrends fleet_trends(
      const analysis::Pipeline& merged,
      const analysis::FleetCoverage& coverage) const;

  /// Register tamper_fleet_* metrics. The registry must outlive the merger.
  void set_obs(obs::Registry* metrics);

 private:
  struct PopEntry {
    common::EpochId epoch{};
    std::uint64_t sequence = 0;
    control::OverloadState overload;  ///< from the newest partial's header
    std::unique_ptr<analysis::Pipeline> pipeline;
  };

  [[nodiscard]] std::uint64_t max_epoch_locked() const TAMPER_REQUIRES(mu_);
  [[nodiscard]] std::uint64_t watermark_locked() const TAMPER_REQUIRES(mu_);

  const world::World& world_;
  MergerConfig config_;
  mutable common::Mutex mu_;
  std::map<common::PopId, PopEntry> pops_ TAMPER_GUARDED_BY(mu_);
  Stats stats_ TAMPER_GUARDED_BY(mu_);
  obs::Registry* metrics_ = nullptr;
  obs::Registry::CollectorId collector_ = 0;
};

}  // namespace tamper::fleet
