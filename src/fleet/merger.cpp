#include "fleet/merger.h"

#include <algorithm>
#include <sstream>

#include "fleet/partial.h"
#include "service/checkpoint.h"

namespace tamper::fleet {

Merger::Merger(const world::World& world, MergerConfig config)
    : world_(world), config_(config) {}

Merger::~Merger() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_);
}

std::uint64_t Merger::max_epoch_locked() const {
  std::uint64_t max_epoch = 0;
  for (const auto& [pop, entry] : pops_)
    max_epoch = std::max(max_epoch, entry.epoch.value());
  return max_epoch;
}

std::uint64_t Merger::watermark_locked() const {
  const std::uint64_t max_epoch = max_epoch_locked();
  return max_epoch > config_.grace_epochs ? max_epoch - config_.grace_epochs : 0;
}

bool Merger::deliver(const std::string& payload) {
  {
    common::MutexLock lock(mu_);
    ++stats_.received;
  }
  const DecodeResult peek = peek_partial(payload);
  if (!peek.ok) {
    // Corrupt bytes are acknowledged: retrying them forever would wedge the
    // sender's spool behind a partial that can never get better.
    common::MutexLock lock(mu_);
    ++stats_.rejected;
    return true;
  }
  const PartialHeader h = peek.header;
  {
    common::MutexLock lock(mu_);
    const auto it = pops_.find(h.pop);
    if (it != pops_.end()) {
      if (h.epoch == it->second.epoch && h.sequence == it->second.sequence) {
        ++stats_.duplicates;
        return true;
      }
      if (h.sequence < it->second.sequence ||
          (h.sequence == it->second.sequence && h.epoch < it->second.epoch)) {
        // Partials are cumulative: newer state already landed (e.g. a spool
        // replay arriving after a fresher delivery). Superseded, drop.
        ++stats_.stale;
        return true;
      }
    }
    if (h.epoch.value() < watermark_locked()) ++stats_.late;  // counted, still merged
  }

  // The expensive restore happens outside the lock; concurrent PoPs decode
  // in parallel and only the insert below serializes.
  auto pipeline = std::make_unique<analysis::Pipeline>(world_);
  const DecodeResult full = decode_partial(payload, *pipeline);
  if (!full.ok) {
    common::MutexLock lock(mu_);
    ++stats_.rejected;
    return true;
  }

  common::MutexLock lock(mu_);
  PopEntry& entry = pops_[h.pop];
  if (entry.pipeline != nullptr) {
    // Recheck under the lock: another delivery for this PoP may have landed
    // while we were decoding.
    if (h.epoch == entry.epoch && h.sequence == entry.sequence) {
      ++stats_.duplicates;
      return true;
    }
    if (h.sequence < entry.sequence ||
        (h.sequence == entry.sequence && h.epoch < entry.epoch)) {
      ++stats_.stale;
      return true;
    }
  }
  entry.epoch = h.epoch;
  entry.sequence = h.sequence;
  entry.overload = h.overload;
  entry.pipeline = std::move(pipeline);
  ++stats_.accepted;

  // Bounded-skew guard: a PoP whose reported epoch strays further than the
  // configured skew bound (in whole epochs) + grace from the fleet median
  // has a broken clock. Metrics-only — the detection depends on what has
  // arrived so far, so it must not feed the (order-invariant) report.
  if (pops_.size() >= 2) {
    std::vector<std::uint64_t> epochs;
    epochs.reserve(pops_.size());
    for (const auto& [pop, e] : pops_) epochs.push_back(e.epoch.value());
    std::sort(epochs.begin(), epochs.end());
    const std::uint64_t median = epochs[epochs.size() / 2];
    const std::uint64_t skew_epochs =
        config_.epoch_length_sec == 0
            ? 0
            : (static_cast<std::uint64_t>(std::max<std::int64_t>(0, config_.max_skew_sec)) +
               config_.epoch_length_sec - 1) /
                  config_.epoch_length_sec;
    const std::uint64_t bound = skew_epochs + config_.grace_epochs;
    const std::uint64_t distance = h.epoch.value() > median ? h.epoch.value() - median
                                                           : median - h.epoch.value();
    if (distance > bound) ++stats_.skew_detected;
  }
  return true;
}

Merger::Stats Merger::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

analysis::FleetCoverage Merger::coverage() const {
  common::MutexLock lock(mu_);
  analysis::FleetCoverage c;
  c.pops_expected = config_.pops_expected;
  c.pops_reporting = static_cast<std::uint32_t>(pops_.size());
  c.max_epoch = max_epoch_locked();
  c.watermark = watermark_locked();

  for (std::uint32_t p = 0; p < config_.pops_expected; ++p) {
    const common::PopId pop(p);
    analysis::FleetPopStatus status;
    status.pop = pop;
    const auto it = pops_.find(pop);
    if (it == pops_.end()) {
      status.status = "silent";
    } else {
      status.last_epoch = it->second.epoch;
      status.samples = it->second.sequence;
      status.overload = control::name(it->second.overload.level);
      status.shed_samples = it->second.overload.shed_samples;
      if (c.max_epoch - it->second.epoch.value() >= config_.heartbeat_timeout_epochs) {
        status.status = "dead";
      } else if (it->second.epoch.value() < c.watermark) {
        status.status = "lagging";
      } else {
        status.status = "live";
      }
    }
    c.pops.push_back(std::move(status));
  }

  if (!pops_.empty()) {
    const std::uint64_t window =
        config_.coverage_window_epochs > 0 ? config_.coverage_window_epochs : 1;
    const std::uint64_t first =
        c.watermark >= window - 1 ? c.watermark - (window - 1) : 0;
    for (std::uint64_t e = first; e <= c.watermark; ++e) {
      analysis::FleetEpochCoverage epoch;
      epoch.epoch = common::EpochId(e);
      epoch.pops_expected = config_.pops_expected;
      // Partials are cumulative, so a PoP whose newest partial is at epoch
      // >= e has epoch e's data inside the merged aggregates. A PoP that
      // was shedding by epoch e contributed incompletely: its header
      // carries the capture time of the FIRST admission drop, so every
      // epoch from that point on is marked shedding — a pure function of
      // the partial set, never of arrival order.
      for (const auto& [pop, entry] : pops_) {
        if (entry.epoch.value() < e) continue;
        ++epoch.pops_reporting;
        if (entry.overload.shed_samples > 0 && entry.overload.first_shed_ts_sec > 0) {
          const std::uint64_t first_shed_epoch =
              config_.epoch_length_sec == 0
                  ? 0
                  : static_cast<std::uint64_t>(entry.overload.first_shed_ts_sec) /
                        config_.epoch_length_sec;
          if (first_shed_epoch <= e) ++epoch.pops_shedding;
        }
      }
      if (epoch.degraded()) c.degraded = true;
      c.epochs.push_back(epoch);
    }
  } else if (config_.pops_expected > 0) {
    c.degraded = true;  // a fully silent fleet is maximally degraded
  }
  return c;
}

std::unique_ptr<analysis::Pipeline> Merger::merged_pipeline() const {
  auto merged = std::make_unique<analysis::Pipeline>(world_);
  common::MutexLock lock(mu_);
  for (const auto& [pop, entry] : pops_)
    if (entry.pipeline != nullptr) merged->merge_from(*entry.pipeline);
  return merged;
}

std::vector<std::uint8_t> Merger::merged_state_image() const {
  const auto merged = merged_pipeline();
  return service::encode_checkpoint(*merged, service::CheckpointMeta{});
}

Merger::FleetTrends Merger::fleet_trends() const {
  const auto merged = merged_pipeline();
  return fleet_trends(*merged, coverage());
}

Merger::FleetTrends Merger::fleet_trends(
    const analysis::Pipeline& merged,
    const analysis::FleetCoverage& coverage) const {
  FleetTrends trends;
  // A coverage-degraded epoch must never be scored as a real rate shift:
  // feed the scan every epoch where PoPs were missing or shedding, plus the
  // epochs where the merged degraded-input series itself rose.
  std::set<std::int64_t> degraded =
      obs::epochs_where_rising(merged.trends(), "degraded");
  trends.epochs.reserve(coverage.epochs.size());
  for (const analysis::FleetEpochCoverage& e : coverage.epochs) {
    obs::EpochCoverageNote note;
    note.epoch = static_cast<std::int64_t>(e.epoch.value());
    note.pops_reporting = e.pops_reporting;
    note.pops_expected = e.pops_expected;
    note.pops_shedding = e.pops_shedding;
    note.degraded = e.degraded();
    trends.epochs.push_back(note);
    if (note.degraded) degraded.insert(note.epoch);
  }
  trends.scan = obs::scan_anomalies(merged.trends(),
                                    obs::default_series_catalog(),
                                    config_.anomaly, degraded);
  return trends;
}

std::string Merger::merged_report(analysis::ReportOptions options) const {
  const auto merged = merged_pipeline();
  const analysis::FleetCoverage fleet = coverage();
  const FleetTrends trends = fleet_trends(*merged, fleet);
  options.fleet = &fleet;
  options.trend_epochs = &trends.epochs;
  options.trend_anomalies = &trends.scan.events;
  std::ostringstream out;
  analysis::write_radar_report(out, *merged, options);
  return out.str();
}

std::string Merger::timeseries_dump(bool pretty) const {
  const auto merged = merged_pipeline();
  const analysis::FleetCoverage fleet = coverage();
  const FleetTrends trends = fleet_trends(*merged, fleet);
  // Copy each reporting PoP's ring out from under the lock so the scopes
  // below can hold stable pointers (rings are small: bounded epochs ×
  // bounded series).
  std::vector<std::pair<common::PopId, obs::EpochRing>> pop_rings;
  {
    common::MutexLock lock(mu_);
    for (const auto& [pop, entry] : pops_)
      if (entry.pipeline != nullptr)
        pop_rings.emplace_back(pop, entry.pipeline->trends());
  }
  std::vector<obs::TimeseriesScope> scopes;
  scopes.reserve(1 + pop_rings.size());
  obs::TimeseriesScope fleet_scope;
  fleet_scope.name = "fleet";
  fleet_scope.ring = &merged->trends();
  fleet_scope.epochs = trends.epochs;
  fleet_scope.anomalies = trends.scan.events;
  scopes.push_back(fleet_scope);
  for (const auto& [pop, ring] : pop_rings) {
    obs::TimeseriesScope scope;
    scope.name = common::format(pop);
    scope.ring = &ring;
    scopes.push_back(scope);
  }
  std::ostringstream out;
  obs::write_timeseries_json(out, scopes,
                             static_cast<std::int64_t>(config_.epoch_length_sec),
                             pretty);
  return out.str();
}

void Merger::set_obs(obs::Registry* metrics) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_);
  metrics_ = metrics;
  if (metrics == nullptr) return;
  obs::Registry& m = *metrics;
  auto& partials_family = m.counter_family(
      "tamper_fleet_partials_total",
      "Partial aggregates by disposition at the merger", {"result"});
  obs::Counter* received = &partials_family.with({"received"});
  obs::Counter* accepted = &partials_family.with({"accepted"});
  obs::Counter* duplicate = &partials_family.with({"duplicate"});
  obs::Counter* stale = &partials_family.with({"stale"});
  obs::Counter* late = &partials_family.with({"late"});
  obs::Counter* rejected = &partials_family.with({"rejected"});
  obs::Counter* skew = &m.counter("tamper_fleet_skew_detected_total",
                                  "Bounded-skew guard trips (PoP clock suspect)");
  obs::Gauge* reporting =
      &m.gauge("tamper_fleet_pops_reporting", "PoPs with any partial received");
  obs::Gauge* expected = &m.gauge("tamper_fleet_pops_expected", "PoPs configured");
  obs::Gauge* watermark =
      &m.gauge("tamper_fleet_watermark_epoch", "Newest epoch considered closed");
  obs::Gauge* shedding = &m.gauge(
      "tamper_fleet_pops_shedding",
      "PoPs whose newest partial reports overload-control admission sheds");
  collector_ = m.add_collector([=, this] {
    Stats s;
    std::size_t pop_count = 0;
    std::size_t shedding_count = 0;
    std::uint64_t mark = 0;
    {
      common::MutexLock lock(mu_);
      s = stats_;
      pop_count = pops_.size();
      for (const auto& [pop, entry] : pops_)
        if (entry.overload.shed_samples > 0) ++shedding_count;
      mark = watermark_locked();
    }
    received->increment_to(s.received);
    accepted->increment_to(s.accepted);
    duplicate->increment_to(s.duplicates);
    stale->increment_to(s.stale);
    late->increment_to(s.late);
    rejected->increment_to(s.rejected);
    skew->increment_to(s.skew_detected);
    reporting->set(static_cast<double>(pop_count));
    expected->set(static_cast<double>(config_.pops_expected));
    watermark->set(static_cast<double>(mark));
    shedding->set(static_cast<double>(shedding_count));
  });
}

}  // namespace tamper::fleet
