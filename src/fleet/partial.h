// Epoch-tagged partial aggregates — the wire unit between a PoP and the
// central merger.
//
// A partial is a full Pipeline snapshot (every aggregator is a commutative
// monoid, see analysis/aggregates.h) wrapped in a small envelope:
//
//   magic    "TSPART01"                   (8 bytes)
//   version  u32                          (kPartialVersion)
//   pop      u32                          (sending PoP id)
//   epoch    u64                          (1-second buckets / epoch_length)
//   sequence u64                          (cumulative samples at emission)
//   level    u8                           (overload ladder level, v2)
//   shed     u64                          (cumulative admission sheds, v2)
//   first_shed i64                        (capture ts of first shed; 0 never, v2)
//   size     u64                          (payload byte count)
//   payload                               (Pipeline::snapshot stream)
//   checksum u64                          (FNV-1a over payload)
//
// Partials are CUMULATIVE, not incremental: each one carries the PoP's
// entire aggregate state so far, and the merger keeps only the newest per
// PoP. That makes every delivery idempotent — a replayed or duplicated
// partial is recognized by (pop, epoch, sequence) and dropped; a stale one
// (lower sequence, e.g. replayed from the spool after newer state arrived)
// is superseded and dropped. The sequence is the samples-ingested count,
// which survives checkpoint resume, so a restarted PoP continues the same
// sequence space with no duplicate and no gap.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/pipeline.h"
#include "common/ids.h"
#include "control/overload.h"

namespace tamper::fleet {

inline constexpr char kPartialMagic[8] = {'T', 'S', 'P', 'A', 'R', 'T', '0', '1'};
// v2: the header carries the PoP's control::OverloadState so the merger can
// mark epochs from shedding PoPs coverage-degraded. v3: the payload is the
// v4 Pipeline snapshot, which appends the trends epoch ring — per-PoP
// longitudinal series ride every partial into the merger. Old versions are
// refused, like old checkpoints: partials are operational state.
inline constexpr std::uint32_t kPartialVersion = 3;

struct PartialHeader {
  /// Strong ids at the API surface; the codec writes their raw
  /// representations (u32 pop, u64 epoch) so the wire bytes are unchanged.
  common::PopId pop{};
  common::EpochId epoch{};     ///< latest_ts_sec (+skew) / epoch_length
  std::uint64_t sequence = 0;  ///< cumulative samples ingested at emission
  /// Overload-control state at emission time (default: never degraded).
  control::OverloadState overload;
};

/// Serialize header + pipeline state into one partial. Pure function of
/// the aggregate state (byte-stable across snapshot -> restore -> snapshot).
[[nodiscard]] std::string encode_partial(const PartialHeader& header,
                                         const analysis::Pipeline& pipeline);

struct DecodeResult {
  bool ok = false;
  std::string error;  ///< human-readable refusal when !ok
  PartialHeader header;
};

/// Header-only validation (magic, version, sizes, checksum) — what the
/// merger runs before paying for a full pipeline restore.
[[nodiscard]] DecodeResult peek_partial(const std::string& payload);

/// Full validation + restore into `pipeline`. On refusal the pipeline may
/// be partially written — decode into a pipeline you can discard.
DecodeResult decode_partial(const std::string& payload, analysis::Pipeline& pipeline);

}  // namespace tamper::fleet
