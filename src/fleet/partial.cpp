#include "fleet/partial.h"

#include <cstring>

#include "common/binio.h"

namespace tamper::fleet {

namespace {
// magic + version + pop + epoch + sequence + overload(1+8+8) + size + checksum
constexpr std::size_t kEnvelopeOverhead = 8 + 4 + 4 + 8 + 8 + (1 + 8 + 8) + 8 + 8;
}  // namespace

std::string encode_partial(const PartialHeader& header,
                           const analysis::Pipeline& pipeline) {
  common::BinWriter payload;
  pipeline.snapshot(payload);

  common::BinWriter out;
  for (char c : kPartialMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kPartialVersion);
  out.u32(header.pop.value());
  out.u64(header.epoch.value());
  out.u64(header.sequence);
  out.u8(static_cast<std::uint8_t>(header.overload.level));
  out.u64(header.overload.shed_samples);
  out.i64(header.overload.first_shed_ts_sec);
  out.u64(payload.bytes().size());
  const std::vector<std::uint8_t> head = out.bytes();

  std::string image(head.begin(), head.end());
  image.append(reinterpret_cast<const char*>(payload.bytes().data()),
               payload.bytes().size());

  common::BinWriter checksum;
  checksum.u64(common::fnv1a_bytes(payload.bytes().data(), payload.bytes().size()));
  image.append(reinterpret_cast<const char*>(checksum.bytes().data()),
               checksum.bytes().size());
  return image;
}

namespace {

DecodeResult validate(const std::string& payload, const std::uint8_t** body,
                      std::uint64_t* body_size) {
  DecodeResult result;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(payload.data());
  if (payload.size() < kEnvelopeOverhead) {
    result.error = "partial too short to hold an envelope (" +
                   std::to_string(payload.size()) + " bytes)";
    return result;
  }
  if (std::memcmp(bytes, kPartialMagic, sizeof kPartialMagic) != 0) {
    result.error = "bad partial magic";
    return result;
  }
  common::BinReader header(bytes + sizeof kPartialMagic,
                           payload.size() - sizeof kPartialMagic);
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint8_t level = 0;
  try {
    version = header.u32();
    // Version gates the header shape: refuse foreign versions before
    // interpreting the rest of the envelope as v2 fields.
    if (version != kPartialVersion) {
      result.error = "unsupported partial version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kPartialVersion) +
                     ")";
      return result;
    }
    result.header.pop = common::PopId(header.u32());
    result.header.epoch = common::EpochId(header.u64());
    result.header.sequence = header.u64();
    level = header.u8();
    result.header.overload.shed_samples = header.u64();
    result.header.overload.first_shed_ts_sec = header.i64();
    payload_size = header.u64();
  } catch (const common::BinUnderrun&) {
    result.error = "truncated partial header";
    return result;
  }
  if (level > static_cast<std::uint8_t>(control::Level::kShedding)) {
    result.error = "partial overload level out of range (" + std::to_string(level) + ")";
    return result;
  }
  result.header.overload.level = static_cast<control::Level>(level);
  if (payload_size != payload.size() - kEnvelopeOverhead) {
    result.error = "partial payload size mismatch (declared " +
                   std::to_string(payload_size) + ", actual " +
                   std::to_string(payload.size() - kEnvelopeOverhead) + ")";
    return result;
  }
  const std::uint8_t* data = bytes + (kEnvelopeOverhead - 8);
  common::BinReader tail(bytes + payload.size() - 8, 8);
  const std::uint64_t declared_checksum = tail.u64();
  const std::uint64_t actual_checksum =
      common::fnv1a_bytes(data, static_cast<std::size_t>(payload_size));
  if (declared_checksum != actual_checksum) {
    result.error = "partial checksum mismatch (corrupt payload)";
    return result;
  }
  *body = data;
  *body_size = payload_size;
  result.ok = true;
  return result;
}

}  // namespace

DecodeResult peek_partial(const std::string& payload) {
  const std::uint8_t* body = nullptr;
  std::uint64_t body_size = 0;
  return validate(payload, &body, &body_size);
}

DecodeResult decode_partial(const std::string& payload, analysis::Pipeline& pipeline) {
  const std::uint8_t* body = nullptr;
  std::uint64_t body_size = 0;
  DecodeResult result = validate(payload, &body, &body_size);
  if (!result.ok) return result;
  try {
    common::BinReader reader(body, static_cast<std::size_t>(body_size));
    pipeline.restore(reader);
    if (!reader.exhausted()) {
      result.ok = false;
      result.error = "partial has " + std::to_string(reader.remaining()) +
                     " trailing payload bytes";
      return result;
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = std::string("partial payload rejected: ") + e.what();
    return result;
  }
  return result;
}

}  // namespace tamper::fleet
