// Multi-PoP fleet driver: N supervised per-PoP service instances, each its
// own fault domain, streaming epoch-tagged partials to a central Merger.
//
// Topology (in-process model of the paper's anycast CDN, §3.1):
//
//   clients --AnycastMap--> PoP 0..N-1, each:
//       SupervisedService (bounded queue, watchdog, checkpoint)
//         -> report_encoder: cumulative partial (fleet/partial.h)
//         -> ReportEmitter (retry/backoff/spool, per-PoP spool dir)
//         -> GateSink (network partition model)
//         -> Merger (central; dedup, watermark, coverage)
//
// Fault domains: each PoP has its own registry, queue, checkpoint file,
// spool directory and worker/watchdog threads — nothing but the Merger is
// shared, so one PoP's crash, stall, partition or clock skew cannot touch
// another's state.
//
// The kill -9 model: kill_pop() abandons the whole PoP process, so
// restart_pop() recreates BOTH the service and its emitter (a real restart
// gets a fresh process image), resumes from the PoP's checkpoint, and
// re-feeds the samples the kill dropped (the retained per-PoP feed is the
// in-process stand-in for the tap's packet stream, which a real PoP would
// re-read from its capture buffer). The per-PoP registry is owned by the
// Fleet and survives restarts, so metric cadence continues seamlessly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capture/sample.h"
#include "common/ids.h"
#include "control/overload.h"
#include "fleet/merger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "service/sink.h"
#include "service/supervisor.h"
#include "world/anycast.h"
#include "world/world.h"

namespace tamper::fleet {

/// Network-partition model: while blocked, every delivery fails (the
/// emitter retries, then spools); heal by unblocking — the spool replays
/// after the next successful delivery.
class GateSink final : public service::Sink {
 public:
  explicit GateSink(service::Sink& inner) : inner_(inner) {}
  bool deliver(const std::string& payload) override {
    if (blocked.load()) return false;
    return inner_.deliver(payload);
  }
  [[nodiscard]] std::string describe() const override {
    return "gate:" + inner_.describe();
  }
  std::atomic<bool> blocked{false};

 private:
  service::Sink& inner_;
};

struct FleetConfig {
  std::uint32_t pops = 3;
  std::uint64_t seed = 1;
  std::uint64_t epoch_length_sec = 3600;
  std::uint64_t report_every_samples = 200;     ///< partial cadence per PoP
  std::uint64_t checkpoint_every_samples = 100;
  std::string state_dir;  ///< required: per-PoP checkpoints + spools live here
  service::RetryPolicy retry;
  std::size_t queue_capacity = 4096;
  /// Retain routed samples per PoP so restart_pop() can re-feed what a kill
  /// dropped. Disable only when kills are not part of the run.
  bool retain_samples = true;
  /// Merger knobs; pops_expected and epoch_length_sec are overwritten from
  /// the fleet values above.
  MergerConfig merger;
  /// Per-PoP overload control (admission + degradation ladder). Disabled by
  /// default; when enabled, each PoP's shed state rides its partials so the
  /// merger marks epochs from shedding PoPs coverage-degraded.
  control::OverloadConfig overload;
  /// Per-PoP trends ring depth/cardinality; the epoch width always follows
  /// the fleet's epoch_length_sec so per-PoP series and partial-header
  /// epochs agree.
  obs::EpochRingConfig trends;
  /// Shared structured-log sink for every PoP's supervisor (optional). Each
  /// PoP's lines carry a tamper_pop field, so one interleaved stream stays
  /// attributable.
  obs::Logger* logger = nullptr;
};

class Fleet {
 public:
  Fleet(const world::World& world, FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Route via anycast and feed the owning PoP. Returns the PoP, or
  /// nullopt when every PoP is withdrawn (sample unobserved) or the owning
  /// PoP refused (failed/stopped).
  std::optional<common::PopId> submit(const capture::ConnectionSample& sample);

  /// Feed a specific PoP, bypassing routing (campaigns precompute a static
  /// routing so crash+resume runs stay byte-comparable to their baseline).
  bool feed_pop(common::PopId pop, const capture::ConnectionSample& sample);

  /// kill -9 the PoP: threads join, nothing persists past its checkpoint.
  void kill_pop(common::PopId pop);
  /// Fresh process image: recreate emitter + service, resume from the
  /// checkpoint, re-feed the dropped tail of the retained feed.
  [[nodiscard]] bool restart_pop(common::PopId pop);
  /// Withdraw the PoP's anycast announcement (route() stops picking it).
  void withdraw_pop(common::PopId pop);

  void set_pop_partitioned(common::PopId pop, bool partitioned);
  void set_pop_skew(common::PopId pop, std::int64_t skew_sec);

  /// Wait until the PoP's worker has ingested everything fed so far (or the
  /// service died). The queue is asynchronous, so without this a fault
  /// injected "at sample i" can land at whatever earlier position the
  /// worker happens to be at; campaigns quiesce before kills and gate
  /// toggles so chaos hits the stream position the schedule chose.
  void quiesce_pop(common::PopId pop);

  /// Graceful shutdown of every still-running PoP (final checkpoint +
  /// final partial each). Indexed by PoP id.
  std::vector<service::RunSummary> stop();

  [[nodiscard]] Merger& merger() noexcept { return *merger_; }
  [[nodiscard]] const Merger& merger() const noexcept { return *merger_; }
  [[nodiscard]] world::AnycastMap& anycast() noexcept { return anycast_; }
  [[nodiscard]] obs::Registry& pop_metrics(common::PopId pop) {
    return *pops_[pop.value()]->registry;
  }
  [[nodiscard]] std::uint32_t pop_count() const noexcept { return config_.pops; }

 private:
  struct Pop {
    std::unique_ptr<obs::Registry> registry;  ///< survives restarts
    std::unique_ptr<GateSink> gate;
    std::unique_ptr<service::ReportEmitter> emitter;
    std::unique_ptr<service::SupervisedService> service;
    std::vector<capture::ConnectionSample> fed;  ///< routed samples, feed order
    std::atomic<std::int64_t> skew_sec{0};
  };

  [[nodiscard]] std::string pop_dir(common::PopId pop) const;
  void build_pop(common::PopId pop);
  [[nodiscard]] std::string encode_pop_partial(
      common::PopId pop, const analysis::Pipeline& pipeline,
      std::uint64_t samples, const control::OverloadState& overload) const;

  const world::World& world_;
  FleetConfig config_;
  std::unique_ptr<Merger> merger_;
  world::AnycastMap anycast_;
  std::vector<std::unique_ptr<Pop>> pops_;
};

}  // namespace tamper::fleet
