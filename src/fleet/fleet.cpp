#include "fleet/fleet.h"

#include <chrono>
#include <filesystem>
#include <thread>

#include "fleet/partial.h"
#include "service/checkpoint.h"

namespace tamper::fleet {

namespace fs = std::filesystem;

Fleet::Fleet(const world::World& world, FleetConfig config)
    : world_(world),
      config_(std::move(config)),
      anycast_(config_.pops, config_.seed) {
  config_.merger.pops_expected = config_.pops;
  config_.merger.epoch_length_sec = config_.epoch_length_sec;
  merger_ = std::make_unique<Merger>(world_, config_.merger);
  pops_.resize(config_.pops);
  for (std::uint32_t pop = 0; pop < config_.pops; ++pop) {
    pops_[pop] = std::make_unique<Pop>();
    pops_[pop]->registry = std::make_unique<obs::Registry>();
    build_pop(common::PopId(pop));
  }
}

Fleet::~Fleet() {
  // Services must die before their emitters/gates (the service destructor
  // may still touch the emitter via its metrics collector).
  for (auto& pop : pops_)
    if (pop) pop->service.reset();
}

std::string Fleet::pop_dir(common::PopId pop) const {
  return config_.state_dir + "/pop-" + std::to_string(pop.value());
}

void Fleet::build_pop(common::PopId pop) {
  Pop& p = *pops_[pop.value()];
  const std::string dir = pop_dir(pop);
  std::error_code ec;
  fs::create_directories(dir, ec);

  // The gate models the network between PoP and merger — external to the
  // PoP process, so it (and its blocked state) survives restart_pop().
  if (p.gate == nullptr) p.gate = std::make_unique<GateSink>(*merger_);
  // Backoff sleeps are a no-op: fleet time is sample-driven, and campaigns
  // must replay thousands of deliveries instantly.
  p.emitter = std::make_unique<service::ReportEmitter>(
      *p.gate, config_.retry, dir + "/spool",
      common::mix64(config_.seed ^ (0x3e9dULL + pop.value())), [](double) {});

  service::ServiceConfig cfg;
  cfg.queue_capacity = config_.queue_capacity;
  cfg.queue_policy = common::QueuePolicy::kBlock;
  cfg.checkpoint_every_samples = config_.checkpoint_every_samples;
  cfg.checkpoint_path = dir + "/checkpoint.bin";
  cfg.report_every_samples = config_.report_every_samples;
  cfg.metrics = p.registry.get();
  cfg.overload = config_.overload;
  cfg.logger = config_.logger;
  cfg.pop = pop;
  cfg.trends = config_.trends;
  cfg.trends.epoch_length_sec =
      static_cast<std::int64_t>(config_.epoch_length_sec);
  cfg.report_encoder = [this, pop](const analysis::Pipeline& pipeline,
                                   std::uint64_t samples,
                                   const control::OverloadState& overload) {
    return encode_pop_partial(pop, pipeline, samples, overload);
  };
  p.service = std::make_unique<service::SupervisedService>(world_, cfg, p.emitter.get());
  // kResumeOrFresh: the first build finds no checkpoint and starts fresh; a
  // rebuilt PoP resumes. A refusal (corrupt checkpoint) leaves the service
  // constructed-but-stopped; feed_pop then returns false.
  (void)p.service->start(service::SupervisedService::Resume::kResumeOrFresh);
}

std::string Fleet::encode_pop_partial(common::PopId pop,
                                      const analysis::Pipeline& pipeline,
                                      std::uint64_t samples,
                                      const control::OverloadState& overload) const {
  PartialHeader header;
  header.pop = pop;
  header.sequence = samples;
  header.overload = overload;
  const std::int64_t ts =
      pipeline.latest_ts_sec() + pops_[pop.value()]->skew_sec.load();
  header.epoch = common::EpochId(
      ts <= 0 || config_.epoch_length_sec == 0
          ? 0
          : static_cast<std::uint64_t>(ts) / config_.epoch_length_sec);
  return encode_partial(header, pipeline);
}

std::optional<common::PopId> Fleet::submit(const capture::ConnectionSample& sample) {
  const auto pop = anycast_.route(sample.client_ip);
  if (!pop) return std::nullopt;
  if (!feed_pop(*pop, sample)) return std::nullopt;
  return pop;
}

bool Fleet::feed_pop(common::PopId pop, const capture::ConnectionSample& sample) {
  Pop& p = *pops_[pop.value()];
  if (config_.retain_samples) p.fed.push_back(sample);
  return p.service != nullptr && p.service->submit(sample);
}

void Fleet::kill_pop(common::PopId pop) {
  Pop& p = *pops_[pop.value()];
  if (p.service != nullptr) (void)p.service->kill();
}

bool Fleet::restart_pop(common::PopId pop) {
  Pop& p = *pops_[pop.value()];
  // Where would the rebuilt PoP resume? Probe the checkpoint so we know
  // which tail of the retained feed the kill dropped.
  std::uint64_t resume_from = 0;
  {
    analysis::Pipeline probe(world_);
    const service::LoadResult r =
        service::load_checkpoint(pop_dir(pop) + "/checkpoint.bin", probe);
    if (r.ok) resume_from = r.meta.samples_ingested;
  }
  p.service.reset();  // joins any leftover threads; frees the old collectors
  p.emitter.reset();  // a fresh process image gets a fresh emitter too
  build_pop(pop);
  if (p.service == nullptr || !p.service->running()) return false;
  // Re-feed the dropped tail. The queue is FIFO and the worker is single,
  // so fed-order == ingest-order and the resume point indexes the feed.
  for (std::size_t i = resume_from; i < p.fed.size(); ++i)
    if (!p.service->submit(p.fed[i])) return false;
  return true;
}

void Fleet::withdraw_pop(common::PopId pop) { anycast_.set_alive(pop, false); }

void Fleet::quiesce_pop(common::PopId pop) {
  Pop& p = *pops_[pop.value()];
  if (p.service == nullptr || !config_.retain_samples) return;
  // After a resume, ingested() counts restored + re-fed samples, so it
  // converges on the retained feed size in every restart history. Bounded
  // spin (~5 s worst case) instead of a deadline: fleet code is clockless.
  for (int spin = 0; spin < 50'000; ++spin) {
    if (!p.service->running()) return;
    if (p.service->ingested() >= p.fed.size()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Fleet::set_pop_partitioned(common::PopId pop, bool partitioned) {
  pops_[pop.value()]->gate->blocked.store(partitioned);
}

void Fleet::set_pop_skew(common::PopId pop, std::int64_t skew_sec) {
  pops_[pop.value()]->skew_sec.store(skew_sec);
}

std::vector<service::RunSummary> Fleet::stop() {
  std::vector<service::RunSummary> summaries;
  summaries.reserve(pops_.size());
  for (auto& pop : pops_)
    summaries.push_back(pop->service != nullptr ? pop->service->stop()
                                                : service::RunSummary{});
  return summaries;
}

}  // namespace tamper::fleet
