// Seeded fleet chaos campaigns — kill-at-any-point proof harness.
//
// A campaign routes a fixed sample stream over a fleet with a STATIC
// routing (computed once with every PoP alive), injects fleet-level chaos
// from a seeded fault::ChaosSchedule, and returns the merged output in a
// byte-comparable form. Two invariants, pinned by tests/test_fleet.cpp
// across >= 50 seeds:
//
//   * kDeliveryChaos — crashes with resume, partitions that heal,
//     stragglers, duplicate deliveries, skewed clocks: every sample's data
//     survives, so the merged aggregate image is BYTE-IDENTICAL to the
//     chaos-free baseline (identical surviving coverage set => identical
//     bytes).
//   * kPopLoss — a PoP dies and never comes back: its unreported tail is
//     gone, and the merged report says so (pops_reporting < pops_expected
//     on the affected epochs, degraded flag set). Explicitly degraded,
//     never silently wrong.
//
// Static routing is deliberate: re-routing a dead PoP's clients mid-run
// would change which vantage observed which connection — a different
// coverage set, hence legitimately different bytes. Failover re-routing is
// exercised separately via world::AnycastMap's minimal-motion tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "capture/sample.h"
#include "fault/chaos.h"
#include "fleet/fleet.h"
#include "world/world.h"

namespace tamper::fleet {

enum class CampaignMode : std::uint8_t {
  kDeliveryChaos,  ///< crash+resume, partition+heal, stragglers, skew
  kPopLoss,        ///< crash without restart: explicit coverage loss
};

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint32_t pops = 3;
  CampaignMode mode = CampaignMode::kDeliveryChaos;
  fault::ChaosSchedule::Config chaos;  ///< only the .fleet block is read
  std::string state_dir;               ///< unique per campaign run
  std::uint64_t epoch_length_sec = 3600;
  std::uint64_t report_every_samples = 200;
  std::uint64_t checkpoint_every_samples = 100;
};

struct CampaignEvents {
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t partition_windows = 0;  ///< gated report-intervals entered
  std::uint64_t straggler_windows = 0;
  std::uint64_t skewed_pops = 0;
};

struct CampaignResult {
  std::vector<std::uint8_t> merged_image;  ///< canonical merged-state bytes
  std::string merged_json;                 ///< merged Radar report + fleet section
  analysis::FleetCoverage coverage;
  Merger::Stats merger_stats;
  CampaignEvents events;
  std::vector<service::RunSummary> summaries;  ///< per PoP
};

/// Run one campaign. `samples` should be sorted by observation_end_sec so
/// each PoP's latest-timestamp (hence epoch) advances monotonically —
/// world::TrafficGenerator emits slightly out of order.
CampaignResult run_campaign(const world::World& world,
                            const std::vector<capture::ConnectionSample>& samples,
                            const CampaignOptions& options);

}  // namespace tamper::fleet
