#include "fleet/campaign.h"

namespace tamper::fleet {

CampaignResult run_campaign(const world::World& world,
                            const std::vector<capture::ConnectionSample>& samples,
                            const CampaignOptions& options) {
  CampaignResult result;
  const fault::ChaosSchedule chaos(options.seed, options.chaos);

  FleetConfig fc;
  fc.pops = options.pops;
  fc.seed = options.seed;
  fc.epoch_length_sec = options.epoch_length_sec;
  fc.report_every_samples = options.report_every_samples;
  fc.checkpoint_every_samples = options.checkpoint_every_samples;
  fc.state_dir = options.state_dir;
  fc.retain_samples = true;
  Fleet fleet(world, fc);

  // Static routing, computed with every PoP alive (see header).
  std::vector<std::vector<const capture::ConnectionSample*>> routed(options.pops);
  for (const capture::ConnectionSample& sample : samples) {
    const auto pop = fleet.anycast().route(sample.client_ip);
    if (pop) routed[pop->value()].push_back(&sample);
  }

  for (std::uint32_t p = 0; p < options.pops; ++p) {
    const common::PopId pop(p);
    const std::int64_t skew = chaos.pop_clock_skew_sec(pop);
    if (skew != 0) {
      fleet.set_pop_skew(pop, skew);
      ++result.events.skewed_pops;
    }
  }

  const std::uint64_t interval =
      options.report_every_samples > 0 ? options.report_every_samples : 1;
  for (std::uint32_t p = 0; p < options.pops; ++p) {
    const common::PopId pop(p);
    const auto& feed = routed[p];
    const auto kill_point =
        chaos.pop_kill_point(pop, static_cast<std::uint64_t>(feed.size()));
    bool gated = false;
    std::uint64_t current_window = ~0ULL;
    bool lost = false;
    for (std::size_t i = 0; i < feed.size(); ++i) {
      if (options.mode == CampaignMode::kDeliveryChaos) {
        // Partition / straggler gates are keyed by report-interval window:
        // a gated window means the partial emitted in it fails delivery and
        // spools; healing lets the spool replay (as duplicates/stale — the
        // merger's idempotence absorbs them).
        const std::uint64_t window = static_cast<std::uint64_t>(i) / interval;
        if (window != current_window) {
          current_window = window;
          const bool partitioned = chaos.pop_partitioned(pop, common::EpochId(window));
          const bool straggling = chaos.pop_straggles(pop, common::EpochId(window));
          if (partitioned) ++result.events.partition_windows;
          if (straggling) ++result.events.straggler_windows;
          const bool gate = partitioned || straggling;
          if (gate != gated) {
            // Let the worker finish the previous window first, so the gate
            // change applies to exactly the partials this window emits.
            fleet.quiesce_pop(pop);
            gated = gate;
            fleet.set_pop_partitioned(pop, gated);
          }
        }
      }
      if (kill_point && static_cast<std::uint64_t>(i) == *kill_point) {
        // Quiesce first: the kill must land at the scheduled stream
        // position, not wherever the async worker happens to be.
        fleet.quiesce_pop(pop);
        fleet.kill_pop(pop);
        ++result.events.kills;
        if (options.mode == CampaignMode::kDeliveryChaos) {
          if (fleet.restart_pop(pop)) ++result.events.restarts;
        } else {
          fleet.withdraw_pop(pop);
          ++result.events.withdrawals;
          lost = true;
          break;  // the unreported tail is gone with the PoP
        }
      }
      fleet.feed_pop(pop, *feed[i]);
    }
    // Heal before shutdown: kDeliveryChaos proves byte-identity, which
    // needs every surviving PoP's final partial to reach the merger. The
    // quiesce pins the tail's partials inside the gated window, so healing
    // replays them from the spool (exercising the merger's stale path).
    if (!lost && gated) {
      fleet.quiesce_pop(pop);
      fleet.set_pop_partitioned(pop, false);
    }
  }

  result.summaries = fleet.stop();
  result.merged_image = fleet.merger().merged_state_image();
  result.merged_json = fleet.merger().merged_report();
  result.coverage = fleet.merger().coverage();
  result.merger_stats = fleet.merger().stats();
  return result;
}

}  // namespace tamper::fleet
