// The paper's §6 thought experiment, implemented: a censor built to evade
// passive server-side detection.
//
// "The ideal tampering strategy would involve blocking content from the
//  server to the client (so the client does not get any objectionable
//  content), while continuing the connection to the server as if it were
//  the client (so the server does not detect any immediate connection
//  teardowns)."
//
// EvasiveCensor does exactly that: once its trigger fires it becomes a
// man-in-the-middle — every server->client packet is dropped, and the censor
// impersonates the client toward the server (correct sequence space, the
// client's own TTL/IP-ID/timestamp-option fingerprint as observed mid-path),
// acking the response and completing a graceful FIN handshake. The server
// tap sees a perfectly normal connection; the client sees a dead one.
//
// The paper notes this requires in-path packet-drop capability, which is
// uncommon in practice (§2.1) — bench/ext_evasion quantifies how completely
// it defeats both the signature taxonomy and per-RST forgery tests.
#pragma once

#include "common/rng.h"
#include "middlebox/trigger.h"
#include "tcp/session.h"

namespace tamper::middlebox {

class EvasiveCensor : public tcp::PathHook {
 public:
  EvasiveCensor(TriggerSet triggers, tcp::PathGeometry geometry, common::Rng rng)
      : triggers_(std::move(triggers)), geometry_(geometry), rng_(rng) {}

  tcp::PathDecision on_transit(tcp::Direction dir, const net::Packet& pkt,
                               common::SimTime now) override;

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }

 private:
  [[nodiscard]] net::Packet impersonate(std::uint8_t flags, std::uint32_t seq,
                                        std::uint32_t ack);

  TriggerSet triggers_;
  tcp::PathGeometry geometry_;
  common::Rng rng_;

  bool triggered_ = false;
  bool fin_sent_ = false;
  // Client identity captured from the triggering packet (as seen mid-path).
  net::IpAddress client_addr_;
  net::IpAddress server_addr_;
  std::uint16_t client_port_ = 0;
  std::uint16_t server_port_ = 0;
  std::uint8_t client_ttl_at_mb_ = 0;
  std::uint16_t next_ip_id_ = 0;
  std::uint32_t ts_clock_ = 0;
  bool client_emits_options_ = false;
  std::uint32_t client_next_seq_ = 0;  ///< sequence we continue from
  std::uint32_t server_next_seq_ = 0;  ///< what we acknowledge
};

}  // namespace tamper::middlebox
