// DPI trigger rules: what makes a middlebox act on a connection.
//
// Real tampering systems key on destination IPs (mid-handshake blocking),
// domain names in the TLS SNI or HTTP Host header, and keywords in HTTP
// requests — including sloppy substring rules that over-block (§5.5 cites
// Turkmenistan matching any domain containing "wn.com").
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "net/ip_address.h"

namespace tamper::middlebox {

class TriggerSet {
 public:
  // tamperlint-allow(R13): trigger rules store raw SNI text, not interned ids
  TriggerSet& add_exact_domain(std::string domain) {
    exact_.insert(std::move(domain));
    return *this;
  }
  /// Matches the domain itself and any subdomain of it.
  TriggerSet& add_domain_suffix(std::string suffix) {
    suffixes_.push_back(std::move(suffix));
    return *this;
  }
  /// Over-blocking rule: any domain containing this substring.
  TriggerSet& add_domain_substring(std::string fragment) {
    substrings_.push_back(std::move(fragment));
    return *this;
  }
  /// Keyword matched against the HTTP path (cleartext requests only).
  TriggerSet& add_http_keyword(std::string keyword) {
    keywords_.push_back(std::move(keyword));
    return *this;
  }
  TriggerSet& add_ip_prefix(net::IpPrefix prefix) {
    prefixes_.push_back(prefix);
    return *this;
  }
  /// Trigger on every connection regardless of content (blanket blocking).
  TriggerSet& match_everything() {
    match_all_ = true;
    return *this;
  }

  // tamperlint-allow(R13): matches against wire SNI bytes (exact/suffix/substring)
  [[nodiscard]] bool matches_domain(std::string_view domain) const {
    if (match_all_) return true;
    if (exact_.contains(std::string(domain))) return true;
    for (const auto& suffix : suffixes_) {
      if (domain == suffix) return true;
      if (domain.size() > suffix.size() && domain.ends_with(suffix) &&
          domain[domain.size() - suffix.size() - 1] == '.')
        return true;
    }
    for (const auto& fragment : substrings_)
      if (domain.find(fragment) != std::string_view::npos) return true;
    return false;
  }

  [[nodiscard]] bool matches_keyword(std::string_view text) const {
    if (match_all_) return true;
    for (const auto& keyword : keywords_)
      if (text.find(keyword) != std::string_view::npos) return true;
    return false;
  }

  [[nodiscard]] bool matches_ip(const net::IpAddress& addr) const {
    if (match_all_) return true;
    for (const auto& prefix : prefixes_)
      if (prefix.contains(addr)) return true;
    return false;
  }

  [[nodiscard]] bool empty() const noexcept {
    return !match_all_ && exact_.empty() && suffixes_.empty() && substrings_.empty() &&
           keywords_.empty() && prefixes_.empty();
  }

 private:
  std::unordered_set<std::string> exact_;
  std::vector<std::string> suffixes_;
  std::vector<std::string> substrings_;
  std::vector<std::string> keywords_;
  std::vector<net::IpPrefix> prefixes_;
  bool match_all_ = false;
};

}  // namespace tamper::middlebox
