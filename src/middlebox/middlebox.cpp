#include "middlebox/middlebox.h"

#include <algorithm>

#include "appproto/dpi.h"

namespace tamper::middlebox {

using net::Packet;
using namespace net::tcpflag;

Middlebox::Middlebox(Behavior behavior, TriggerSet triggers, tcp::PathGeometry geometry,
                     common::Rng rng)
    : behavior_(std::move(behavior)),
      triggers_(std::move(triggers)),
      geometry_(geometry),
      rng_(rng),
      injector_stack_(behavior_.injector_stack) {
  injector_stack_.start_connection(rng_);
}

bool Middlebox::evaluate_trigger(tcp::Direction dir, const Packet& pkt) {
  if (dir != tcp::Direction::kClientToServer) return false;
  switch (behavior_.trigger_point) {
    case TriggerPoint::kClientSyn:
      return pkt.tcp.is_syn() && triggers_.matches_ip(pkt.dst);
    case TriggerPoint::kHandshakeAck:
      return pkt.tcp.flags == kAck && pkt.payload.empty() && triggers_.matches_ip(pkt.dst);
    case TriggerPoint::kClientData: {
      if (pkt.payload.empty() || pkt.tcp.has(kSyn) || pkt.tcp.has(kRst)) return false;
      ++client_data_packets_;
      if (client_data_packets_ < behavior_.min_data_packets) return false;
      const appproto::DpiResult dpi = appproto::inspect_payload(pkt.payload);
      if (dpi.domain && triggers_.matches_domain(*dpi.domain)) {
        trigger_domain_ = dpi.domain;
        return true;
      }
      if (dpi.http_path && triggers_.matches_keyword(*dpi.http_path)) {
        trigger_domain_ = dpi.domain;
        return true;
      }
      // Blanket DPI (match-everything) still fires on opaque payloads.
      if (triggers_.empty()) return false;
      if (!dpi.domain && !dpi.http_path && triggers_.matches_keyword("")) {
        return true;
      }
      return false;
    }
  }
  return false;
}

net::Packet Middlebox::forge(const TeardownSpec& spec, const Packet& trigger_pkt,
                             bool toward_server) {
  // The trigger packet travels client->server, so toward the server we spoof
  // the client and continue its sequence space; toward the client we spoof
  // the server and mirror the acknowledgment state.
  const std::uint32_t client_next_seq =
      trigger_pkt.tcp.seq + static_cast<std::uint32_t>(trigger_pkt.payload.size()) +
      (trigger_pkt.tcp.has(kSyn) ? 1u : 0u);
  const std::uint32_t client_acked = trigger_pkt.tcp.ack;

  Packet pkt;
  if (toward_server) {
    pkt = net::make_tcp_packet(trigger_pkt.src, trigger_pkt.tcp.src_port, trigger_pkt.dst,
                               trigger_pkt.tcp.dst_port, 0, 0, 0);
  } else {
    pkt = net::make_tcp_packet(trigger_pkt.dst, trigger_pkt.tcp.dst_port, trigger_pkt.src,
                               trigger_pkt.tcp.src_port, 0, 0, 0);
  }
  pkt.tcp.flags = static_cast<std::uint8_t>(kRst | (spec.ack_flag ? kAck : 0));

  const std::uint32_t correct_seq = toward_server ? client_next_seq : client_acked;
  const std::uint32_t correct_ack = toward_server ? client_acked : client_next_seq;
  pkt.tcp.seq = spec.seq_mode == TeardownSpec::SeqMode::kCorrect
                    ? correct_seq
                    : static_cast<std::uint32_t>(rng_.next());
  switch (spec.ack_mode) {
    case TeardownSpec::AckMode::kCorrect:
      pkt.tcp.ack = correct_ack;
      break;
    case TeardownSpec::AckMode::kZero:
      pkt.tcp.ack = 0;
      break;
    case TeardownSpec::AckMode::kOffset:
      pkt.tcp.ack = correct_ack + static_cast<std::uint32_t>(spec.ack_offset);
      break;
    case TeardownSpec::AckMode::kRandom:
      pkt.tcp.ack = static_cast<std::uint32_t>(rng_.next());
      break;
  }
  pkt.tcp.window = 0;

  // Stamp with the injector's stack, then pre-decrement the TTL for the
  // remaining path (PathHook contract: injections carry arrival TTL).
  injector_stack_.stamp(pkt, rng_, &trigger_pkt);
  const int remaining =
      toward_server ? geometry_.hops_to_server() : geometry_.hops_to_client();
  pkt.ip.ttl = static_cast<std::uint8_t>(std::max(1, static_cast<int>(pkt.ip.ttl) - remaining));
  return pkt;
}

void Middlebox::fire(tcp::PathDecision& decision, const Packet& trigger_pkt) {
  if (behavior_.block_page_to_client) {
    static constexpr std::string_view kBlockPage =
        "HTTP/1.1 403 Forbidden\r\nContent-Type: text/html\r\n"
        "Connection: close\r\n\r\n<html><body>Access denied.</body></html>";
    Packet page = net::make_tcp_packet(
        trigger_pkt.dst, trigger_pkt.tcp.dst_port, trigger_pkt.src,
        trigger_pkt.tcp.src_port, kPsh | kAck, trigger_pkt.tcp.ack,
        trigger_pkt.tcp.seq + static_cast<std::uint32_t>(trigger_pkt.payload.size()),
        std::vector<std::uint8_t>(kBlockPage.begin(), kBlockPage.end()));
    injector_stack_.stamp(page, rng_, &trigger_pkt);
    page.ip.ttl = static_cast<std::uint8_t>(
        std::max(1, static_cast<int>(page.ip.ttl) - geometry_.hops_to_client()));
    decision.injections.push_back(
        {std::move(page), tcp::Direction::kServerToClient, 0.0003});
  }
  for (const auto& spec : behavior_.to_server) {
    decision.injections.push_back(
        {forge(spec, trigger_pkt, /*toward_server=*/true),
         tcp::Direction::kClientToServer, spec.delay});
  }
  for (const auto& spec : behavior_.to_client) {
    decision.injections.push_back(
        {forge(spec, trigger_pkt, /*toward_server=*/false),
         tcp::Direction::kServerToClient, spec.delay});
  }
}

tcp::PathDecision Middlebox::on_transit(tcp::Direction dir, const Packet& pkt,
                                        common::SimTime /*now*/) {
  tcp::PathDecision decision;

  if (triggered_) {
    // Post-trigger policy for the rest of the flow.
    if (dir == tcp::Direction::kClientToServer) {
      if (behavior_.drop_subsequent_client_all ||
          (behavior_.drop_subsequent_client_data && !pkt.payload.empty())) {
        decision.drop = true;
        return decision;
      }
      if (behavior_.refire && !pkt.payload.empty() && evaluate_trigger(dir, pkt)) {
        fire(decision, pkt);
        decision.drop = behavior_.drop_trigger_packet;
        return decision;
      }
    } else if (behavior_.drop_server_to_client) {
      decision.drop = true;
      return decision;
    }
    return decision;
  }

  if (evaluate_trigger(dir, pkt)) {
    triggered_ = true;
    fire(decision, pkt);
    decision.drop = behavior_.drop_trigger_packet;
  }
  return decision;
}

tcp::PathDecision MiddleboxChain::on_transit(tcp::Direction dir, const Packet& pkt,
                                             common::SimTime now) {
  tcp::PathDecision combined;
  for (auto& hook : hooks_) {
    tcp::PathDecision decision = hook->on_transit(dir, pkt, now);
    for (auto& injection : decision.injections)
      combined.injections.push_back(std::move(injection));
    if (decision.drop) {
      combined.drop = true;
      break;  // later (further) boxes never see the packet
    }
  }
  return combined;
}

}  // namespace tamper::middlebox
