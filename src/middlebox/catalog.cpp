#include "middlebox/catalog.h"

#include <stdexcept>
#include <utility>

namespace tamper::middlebox::catalog {

namespace {

using SeqMode = TeardownSpec::SeqMode;
using AckMode = TeardownSpec::AckMode;

TeardownSpec rst(AckMode ack = AckMode::kCorrect, double delay = 0.0005) {
  return TeardownSpec{.ack_flag = false, .ack_mode = ack, .delay = delay};
}
TeardownSpec rst_ack(AckMode ack = AckMode::kCorrect, double delay = 0.0005) {
  return TeardownSpec{.ack_flag = true, .ack_mode = ack, .delay = delay};
}

tcp::IpStackModel::Config injector_defaults() {
  // Injectors run their own stack: global IP-ID counter, TTL 64 from a
  // mid-path position (so the arrival TTL differs from the client's).
  return {.initial_ttl = 64, .ipid = tcp::IpIdStrategy::kGlobalCounter};
}

Behavior base(std::string name, TriggerPoint point) {
  Behavior b;
  b.name = std::move(name);
  b.trigger_point = point;
  b.injector_stack = injector_defaults();
  return b;
}

}  // namespace

Behavior syn_blackhole() {
  Behavior b = base("syn_blackhole", TriggerPoint::kClientSyn);
  b.drop_server_to_client = true;  // the SYN passes; the SYN+ACK never returns
  return b;
}

Behavior syn_rst() {
  Behavior b = base("syn_rst", TriggerPoint::kClientSyn);
  b.to_server = {rst(AckMode::kZero)};
  b.to_client = {rst_ack()};
  b.drop_server_to_client = true;
  return b;
}

Behavior syn_rst_ack() {
  Behavior b = base("syn_rst_ack", TriggerPoint::kClientSyn);
  b.to_server = {rst_ack()};
  b.to_client = {rst_ack()};
  b.drop_server_to_client = true;
  // Fig. 2: this signature shows small IP-ID deltas in the wild — the
  // injectors copy the IP-ID from the triggering packet (§4.3).
  b.injector_stack.ipid = tcp::IpIdStrategy::kCopyTrigger;
  return b;
}

Behavior gfw_syn_burst() {
  Behavior b = base("gfw_syn_burst", TriggerPoint::kClientSyn);
  b.to_server = {rst(AckMode::kZero), rst_ack(AckMode::kCorrect, 0.001)};
  b.to_client = {rst(AckMode::kZero), rst_ack(AckMode::kCorrect, 0.001)};
  b.drop_server_to_client = true;
  return b;
}

Behavior post_ack_blackhole() {
  Behavior b = base("post_ack_blackhole", TriggerPoint::kClientData);
  b.drop_trigger_packet = true;           // the ClientHello never arrives
  b.drop_subsequent_client_data = true;   // nor its retransmissions
  return b;
}

Behavior post_ack_rst() {
  Behavior b = base("post_ack_rst", TriggerPoint::kClientData);
  b.drop_trigger_packet = true;
  b.drop_subsequent_client_data = true;
  b.to_server = {rst(AckMode::kCorrect)};
  b.to_client = {rst_ack()};
  return b;
}

Behavior post_ack_rst_burst() {
  Behavior b = base("post_ack_rst_burst", TriggerPoint::kClientData);
  b.drop_trigger_packet = true;
  b.drop_subsequent_client_data = true;
  b.to_server = {rst(AckMode::kCorrect), rst(AckMode::kCorrect, 0.001)};
  b.to_client = {rst_ack()};
  return b;
}

Behavior iran_rst_ack() {
  Behavior b = base("iran_rst_ack", TriggerPoint::kClientData);
  b.drop_trigger_packet = true;
  b.drop_subsequent_client_data = true;
  b.to_server = {rst_ack()};
  b.to_client = {rst_ack()};
  b.block_page_to_client = true;  // Aryan et al.: block page + teardown
  b.drop_subsequent_client_all = true;  // in-path: the page's ACK never leaves
  // Copies the client's IP-ID (Fig. 2 shows small deltas for this pattern).
  b.injector_stack.ipid = tcp::IpIdStrategy::kCopyTrigger;
  return b;
}

Behavior iran_rst_ack_burst() {
  Behavior b = base("iran_rst_ack_burst", TriggerPoint::kClientData);
  b.drop_trigger_packet = true;
  b.drop_subsequent_client_data = true;
  b.to_server = {rst_ack(), rst_ack(AckMode::kCorrect, 0.0015)};
  b.to_client = {rst_ack()};
  b.injector_stack.ipid = tcp::IpIdStrategy::kCopyTrigger;
  return b;
}

Behavior psh_blackhole() {
  Behavior b = base("psh_blackhole", TriggerPoint::kClientData);
  b.drop_trigger_packet = false;          // the offending packet reaches us
  b.drop_subsequent_client_data = true;   // nothing from the client after it
  b.drop_server_to_client = true;         // and the response never returns
  return b;
}

Behavior single_rst_firewall() {
  Behavior b = base("single_rst_firewall", TriggerPoint::kClientData);
  b.to_server = {rst(AckMode::kCorrect)};
  b.to_client = {rst(AckMode::kCorrect)};
  return b;
}

Behavior single_rst_ack_firewall() {
  Behavior b = base("single_rst_ack_firewall", TriggerPoint::kClientData);
  b.to_server = {rst_ack()};
  b.to_client = {rst_ack()};
  return b;
}

Behavior gfw_mixed_burst() {
  Behavior b = base("gfw_mixed_burst", TriggerPoint::kClientData);
  b.to_server = {rst(AckMode::kCorrect), rst_ack(AckMode::kCorrect, 0.001)};
  b.to_client = {rst(AckMode::kCorrect), rst_ack(AckMode::kCorrect, 0.001)};
  b.refire = true;  // the GFW keeps killing retries (residual censorship)
  return b;
}

Behavior gfw_double_rst_ack() {
  Behavior b = base("gfw_double_rst_ack", TriggerPoint::kClientData);
  b.to_server = {rst_ack(), rst_ack(AckMode::kCorrect, 0.001),
                 rst_ack(AckMode::kCorrect, 0.002)};
  b.to_client = {rst_ack(), rst_ack(AckMode::kCorrect, 0.001)};
  b.refire = true;
  return b;
}

Behavior repeated_rst_same_ack() {
  Behavior b = base("repeated_rst_same_ack", TriggerPoint::kClientData);
  b.to_server = {rst(AckMode::kCorrect), rst(AckMode::kCorrect, 0.001),
                 rst(AckMode::kCorrect, 0.002)};
  b.to_client = {rst(AckMode::kCorrect)};
  return b;
}

Behavior ack_guessing_injector() {
  // Weaver et al.: inject several RSTs guessing ahead in the window so at
  // least one lands in the receiver's acceptable range.
  Behavior b = base("ack_guessing_injector", TriggerPoint::kClientData);
  TeardownSpec guess1 = rst(AckMode::kOffset, 0.001);
  guess1.ack_offset = 1460;
  TeardownSpec guess2 = rst(AckMode::kOffset, 0.002);
  guess2.ack_offset = 2920;
  b.to_server = {rst(AckMode::kCorrect), guess1, guess2};
  b.to_client = {rst(AckMode::kCorrect)};
  return b;
}

Behavior zero_ack_injector() {
  Behavior b = base("zero_ack_injector", TriggerPoint::kClientData);
  b.to_server = {rst(AckMode::kCorrect), rst(AckMode::kZero, 0.001)};
  b.to_client = {rst(AckMode::kCorrect)};
  return b;
}

Behavior korea_random_ttl() {
  Behavior b = ack_guessing_injector();
  b.name = "korea_random_ttl";
  b.injector_stack.random_ttl = true;
  return b;
}

Behavior keyword_firewall_rst() {
  Behavior b = base("keyword_firewall_rst", TriggerPoint::kClientData);
  b.min_data_packets = 2;  // acts only after multiple data packets
  b.to_server = {rst(AckMode::kCorrect)};
  b.to_client = {rst(AckMode::kCorrect)};
  return b;
}

Behavior keyword_firewall_rst_ack() {
  Behavior b = base("keyword_firewall_rst_ack", TriggerPoint::kClientData);
  b.min_data_packets = 2;
  b.to_server = {rst_ack()};
  b.to_client = {rst_ack()};
  return b;
}

Behavior by_name(std::string_view preset_name) {
  static const std::pair<std::string_view, Behavior (*)()> kCatalog[] = {
      {"syn_blackhole", syn_blackhole},
      {"syn_rst", syn_rst},
      {"syn_rst_ack", syn_rst_ack},
      {"gfw_syn_burst", gfw_syn_burst},
      {"post_ack_blackhole", post_ack_blackhole},
      {"post_ack_rst", post_ack_rst},
      {"post_ack_rst_burst", post_ack_rst_burst},
      {"iran_rst_ack", iran_rst_ack},
      {"iran_rst_ack_burst", iran_rst_ack_burst},
      {"psh_blackhole", psh_blackhole},
      {"single_rst_firewall", single_rst_firewall},
      {"single_rst_ack_firewall", single_rst_ack_firewall},
      {"gfw_mixed_burst", gfw_mixed_burst},
      {"gfw_double_rst_ack", gfw_double_rst_ack},
      {"repeated_rst_same_ack", repeated_rst_same_ack},
      {"ack_guessing_injector", ack_guessing_injector},
      {"zero_ack_injector", zero_ack_injector},
      {"korea_random_ttl", korea_random_ttl},
      {"keyword_firewall_rst", keyword_firewall_rst},
      {"keyword_firewall_rst_ack", keyword_firewall_rst_ack},
  };
  for (const auto& [name, factory] : kCatalog)
    if (name == preset_name) return factory();
  throw std::out_of_range("unknown middlebox preset: " + std::string(preset_name));
}

}  // namespace tamper::middlebox::catalog
