// The programmable tampering middlebox.
//
// A Middlebox watches one session's packets mid-path (tcp::PathHook) and,
// when its TriggerSet fires, executes a Behavior: drop the offending
// packet and/or subsequent traffic, and inject a configurable burst of
// tear-down packets toward the server and/or the client. Injected packets
// are stamped by the injector's own IP stack (TTL/IP-ID), which is what the
// paper's Figs. 2-3 evidence detects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "middlebox/trigger.h"
#include "tcp/ip_stack_model.h"
#include "tcp/session.h"

namespace tamper::middlebox {

/// When the middlebox evaluates its trigger.
enum class TriggerPoint : std::uint8_t {
  kClientSyn,      ///< on the client's SYN (destination-IP blocking)
  kHandshakeAck,   ///< on the client's handshake ACK
  kClientData,     ///< on client data packets (SNI / Host / keyword DPI)
};

/// One forged tear-down packet in the injection burst.
struct TeardownSpec {
  bool ack_flag = true;  ///< RST+ACK when true, bare RST when false

  enum class SeqMode : std::uint8_t {
    kCorrect,  ///< next in-window sequence number for the receiver
    kRandom,
  };
  enum class AckMode : std::uint8_t {
    kCorrect,  ///< echo the acknowledgment state from the trigger packet
    kZero,
    kOffset,   ///< correct value + ack_offset (ack-guessing injectors)
    kRandom,
  };
  SeqMode seq_mode = SeqMode::kCorrect;
  AckMode ack_mode = AckMode::kCorrect;
  std::int32_t ack_offset = 0;
  double delay = 0.0005;  ///< relative to the trigger packet, seconds
};

struct Behavior {
  std::string name = "middlebox";
  TriggerPoint trigger_point = TriggerPoint::kClientData;
  /// For kClientData: fire only when this many client data packets have been
  /// seen (1 = the first data packet; >1 models devices that act later,
  /// e.g. keyword firewalls inspecting the full request or decrypted TLS).
  int min_data_packets = 1;

  bool drop_trigger_packet = false;        ///< in-path: eat the offending packet
  bool drop_subsequent_client_data = false;  ///< eat later client->server payloads
  /// In-path censor holds the whole flow: every later client->server packet
  /// (including bare ACKs, e.g. of an injected block page) is eaten.
  bool drop_subsequent_client_all = false;
  bool drop_server_to_client = false;        ///< eat server responses after trigger

  std::vector<TeardownSpec> to_server;
  std::vector<TeardownSpec> to_client;
  /// Inject an HTTP 403 block page toward the client before the tear-down
  /// (Aryan et al. observed this from Iran's censor). Invisible to the
  /// server-side tap, but completes the client-side behavior.
  bool block_page_to_client = false;

  tcp::IpStackModel::Config injector_stack{.initial_ttl = 64,
                                           .ipid = tcp::IpIdStrategy::kGlobalCounter};
  /// Re-fire on subsequent trigger-matching packets (residual blocking).
  bool refire = false;
};

class Middlebox : public tcp::PathHook {
 public:
  Middlebox(Behavior behavior, TriggerSet triggers, tcp::PathGeometry geometry,
            common::Rng rng);

  tcp::PathDecision on_transit(tcp::Direction dir, const net::Packet& pkt,
                               common::SimTime now) override;

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] const Behavior& behavior() const noexcept { return behavior_; }
  /// The domain that caused the trigger, if the trigger was content-based.
  [[nodiscard]] const std::optional<std::string>& trigger_domain() const noexcept {
    return trigger_domain_;
  }

 private:
  [[nodiscard]] bool evaluate_trigger(tcp::Direction dir, const net::Packet& pkt);
  void fire(tcp::PathDecision& decision, const net::Packet& trigger_pkt);
  [[nodiscard]] net::Packet forge(const TeardownSpec& spec, const net::Packet& trigger_pkt,
                                  bool toward_server);

  Behavior behavior_;
  TriggerSet triggers_;
  tcp::PathGeometry geometry_;
  common::Rng rng_;
  tcp::IpStackModel injector_stack_;

  bool triggered_ = false;
  int client_data_packets_ = 0;
  std::optional<std::string> trigger_domain_;
};

/// Composes middleboxes in path order (censorship-in-depth). A packet
/// dropped by an earlier box is not seen by later ones; injections are
/// delivered directly.
class MiddleboxChain : public tcp::PathHook {
 public:
  void add(std::unique_ptr<tcp::PathHook> hook) { hooks_.push_back(std::move(hook)); }
  [[nodiscard]] bool empty() const noexcept { return hooks_.empty(); }

  tcp::PathDecision on_transit(tcp::Direction dir, const net::Packet& pkt,
                               common::SimTime now) override;

 private:
  std::vector<std::unique_ptr<tcp::PathHook>> hooks_;
};

}  // namespace tamper::middlebox
