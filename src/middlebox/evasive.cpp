#include "middlebox/evasive.h"

#include <algorithm>

#include "appproto/dpi.h"

namespace tamper::middlebox {

using net::Packet;
using namespace net::tcpflag;

Packet EvasiveCensor::impersonate(std::uint8_t flags, std::uint32_t seq,
                                  std::uint32_t ack) {
  Packet pkt = net::make_tcp_packet(client_addr_, client_port_, server_addr_,
                                    server_port_, flags, seq, ack);
  // Mimic the client's fingerprint as observed mid-path: same remaining TTL
  // budget, continuation of its IP-ID counter and timestamp clock.
  pkt.ip.ttl = static_cast<std::uint8_t>(
      std::max(1, static_cast<int>(client_ttl_at_mb_) - geometry_.hops_to_server()));
  pkt.ip.ip_id = client_addr_.is_v4() ? ++next_ip_id_ : 0;
  if (client_emits_options_) {
    pkt.tcp.options.push_back(net::TcpOption::nop_opt());
    pkt.tcp.options.push_back(net::TcpOption::nop_opt());
    pkt.tcp.options.push_back(net::TcpOption::timestamps_opt(++ts_clock_, 0));
  }
  return pkt;
}

tcp::PathDecision EvasiveCensor::on_transit(tcp::Direction dir, const Packet& pkt,
                                            common::SimTime /*now*/) {
  tcp::PathDecision decision;

  if (!triggered_) {
    if (dir != tcp::Direction::kClientToServer || pkt.payload.empty()) return decision;
    const appproto::DpiResult dpi = appproto::inspect_payload(pkt.payload);
    if (!dpi.domain || !triggers_.matches_domain(*dpi.domain)) return decision;

    triggered_ = true;
    client_addr_ = pkt.src;
    server_addr_ = pkt.dst;
    client_port_ = pkt.tcp.src_port;
    server_port_ = pkt.tcp.dst_port;
    client_ttl_at_mb_ = pkt.ip.ttl;
    next_ip_id_ = pkt.ip.ip_id;
    client_emits_options_ = !pkt.tcp.options.empty();
    if (const auto ts = pkt.tcp.timestamp_value()) ts_clock_ = *ts;
    client_next_seq_ = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload.size());
    server_next_seq_ = pkt.tcp.ack;
    // The offending request itself is allowed through: the censor wants the
    // server to keep talking to "the client".
    return decision;
  }

  if (dir == tcp::Direction::kClientToServer) {
    // The real client is cut off; its retransmissions must not reach the
    // server (they would contradict the impersonated conversation).
    decision.drop = true;
    return decision;
  }

  // Server -> client: eat everything, and keep the server happy.
  decision.drop = true;
  const std::uint32_t consumed = static_cast<std::uint32_t>(pkt.payload.size()) +
                                 (pkt.tcp.has(kFin) ? 1u : 0u);
  if (consumed == 0) return decision;  // bare ACKs need no reply
  server_next_seq_ = pkt.tcp.seq + consumed;

  if (pkt.tcp.has(kFin) && !fin_sent_) {
    // Close gracefully, exactly as a content client would.
    fin_sent_ = true;
    decision.injections.push_back({impersonate(kFin | kAck, client_next_seq_,
                                               server_next_seq_),
                                   tcp::Direction::kClientToServer, 0.0004});
    client_next_seq_ += 1;
  } else {
    decision.injections.push_back({impersonate(kAck, client_next_seq_, server_next_seq_),
                                   tcp::Direction::kClientToServer, 0.0004});
  }
  return decision;
}

}  // namespace tamper::middlebox
