// Catalog of documented tampering behaviors.
//
// Each preset reproduces a behavior described in the paper or its cited
// measurements, named accordingly. The presets define *how* a middlebox
// tampers; the TriggerSet (what it tampers with) is attached separately by
// the world model's censorship policies.
//
//   Preset                      Expected server-side signature(s)
//   ------------------------------------------------------------------
//   syn_blackhole               ⟨SYN → ∅⟩          (SYN+ACK eaten on return path)
//   syn_rst                     ⟨SYN → RST⟩        (IP block, bare RST)
//   syn_rst_ack                 ⟨SYN → RST+ACK⟩
//   gfw_syn_burst               ⟨SYN → RST;RST+ACK⟩ (GFW-style mixed burst)
//   post_ack_blackhole          ⟨SYN;ACK → ∅⟩      (Iran 2020: ClientHello dropped)
//   post_ack_rst                ⟨SYN;ACK → RST⟩    (Turkmenistan CDN blanket bans)
//   post_ack_rst_burst          ⟨SYN;ACK → RST;RST⟩
//   iran_rst_ack                ⟨SYN;ACK → RST+ACK⟩ (Iran 2013: drop + inject)
//   iran_rst_ack_burst          ⟨SYN;ACK → RST+ACK;RST+ACK⟩
//   psh_blackhole               ⟨PSH → ∅⟩          (first data passes, rest dropped)
//   single_rst_firewall         ⟨PSH → RST⟩
//   single_rst_ack_firewall     ⟨PSH → RST+ACK⟩
//   gfw_mixed_burst             ⟨PSH → RST;RST+ACK⟩ (GFW classic)
//   gfw_double_rst_ack          ⟨PSH → RST+ACK;RST+ACK⟩ (GFW "backup" middleboxes)
//   repeated_rst_same_ack       ⟨PSH → RST=RST⟩
//   ack_guessing_injector       ⟨PSH → RST≠RST⟩    (Weaver et al. ack-guessers)
//   zero_ack_injector           ⟨PSH → RST;RST₀⟩   (seen from CN and KR)
//   keyword_firewall_rst        ⟨PSH;Data → RST⟩   (acts after multiple packets)
//   keyword_firewall_rst_ack    ⟨PSH;Data → RST+ACK⟩ (commercial firewalls, UA)
//   korea_random_ttl            ⟨PSH → RST≠RST⟩ with random TTLs (KR ISP, §5.1)
#pragma once

#include <string_view>

#include "middlebox/middlebox.h"

namespace tamper::middlebox::catalog {

[[nodiscard]] Behavior syn_blackhole();
[[nodiscard]] Behavior syn_rst();
[[nodiscard]] Behavior syn_rst_ack();
[[nodiscard]] Behavior gfw_syn_burst();

[[nodiscard]] Behavior post_ack_blackhole();
[[nodiscard]] Behavior post_ack_rst();
[[nodiscard]] Behavior post_ack_rst_burst();
[[nodiscard]] Behavior iran_rst_ack();
[[nodiscard]] Behavior iran_rst_ack_burst();

[[nodiscard]] Behavior psh_blackhole();
[[nodiscard]] Behavior single_rst_firewall();
[[nodiscard]] Behavior single_rst_ack_firewall();
[[nodiscard]] Behavior gfw_mixed_burst();
[[nodiscard]] Behavior gfw_double_rst_ack();
[[nodiscard]] Behavior repeated_rst_same_ack();
[[nodiscard]] Behavior ack_guessing_injector();
[[nodiscard]] Behavior zero_ack_injector();
[[nodiscard]] Behavior korea_random_ttl();

[[nodiscard]] Behavior keyword_firewall_rst();
[[nodiscard]] Behavior keyword_firewall_rst_ack();

/// Look up any preset by its catalog name; throws std::out_of_range on a
/// name that is not listed above.
[[nodiscard]] Behavior by_name(std::string_view preset_name);

}  // namespace tamper::middlebox::catalog
