#include "fault/injector.h"

#include <algorithm>

namespace tamper::fault {

namespace {

std::uint64_t flow_hash(const net::IpAddress& client, std::uint16_t client_port,
                        const net::IpAddress& server, std::uint16_t server_port) {
  return common::mix64(client.hash() ^ common::mix64(server.hash()) ^
                       (static_cast<std::uint64_t>(client_port) << 16 | server_port));
}

/// Offset of the TCP header inside a raw IP frame, or 0 if unknown.
std::size_t tcp_offset(const std::vector<std::uint8_t>& frame) {
  if (frame.size() < 20) return 0;
  const std::uint8_t version = frame[0] >> 4;
  if (version == 4) return static_cast<std::size_t>(frame[0] & 0x0f) * 4;
  if (version == 6) return 40;
  return 0;
}

}  // namespace

bool FaultInjector::flow_is_faulted(const net::IpAddress& client, std::uint16_t client_port,
                                    const net::IpAddress& server,
                                    std::uint16_t server_port) const noexcept {
  if (config_.flow_fault_fraction <= 0.0) return false;
  const std::uint64_t h =
      common::mix64(flow_hash(client, client_port, server, server_port) ^ seed_);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < config_.flow_fault_fraction;
}

void FaultInjector::emit_flood_burst(const net::Packet& trigger,
                                     std::vector<TimedFrame>& out) {
  for (std::size_t i = 0; i < config_.flood_burst_size; ++i) {
    // CGNAT space (100.64.0.0/10): never collides with the flows under test.
    const auto src =
        net::IpAddress::v4(0x64400000u | static_cast<std::uint32_t>(rng_.below(1u << 22)));
    net::Packet syn = net::make_tcp_packet(
        src, static_cast<std::uint16_t>(1024 + rng_.below(60000)), trigger.dst,
        trigger.tcp.dst_port, net::tcpflag::kSyn,
        static_cast<std::uint32_t>(rng_.next()), 0);
    syn.timestamp = trigger.timestamp;
    syn.ip.ttl = static_cast<std::uint8_t>(32 + rng_.below(200));
    out.push_back({syn.timestamp, net::serialize(syn)});
    ++stats_.flood_syns;
    ++stats_.frames_emitted;
  }
}

std::vector<TimedFrame> FaultInjector::run(const std::vector<net::Packet>& stream) {
  std::vector<TimedFrame> out;
  out.reserve(stream.size());
  for (const net::Packet& pkt : stream) {
    if (pkt.tcp.is_syn() && config_.flood_burst_probability > 0.0 &&
        rng_.chance(config_.flood_burst_probability))
      emit_flood_burst(pkt, out);

    TimedFrame frame{pkt.timestamp, net::serialize(pkt)};
    if (flow_is_faulted(pkt.src, pkt.tcp.src_port, pkt.dst, pkt.tcp.dst_port)) {
      if (rng_.chance(config_.frame_truncation) && frame.bytes.size() > 1) {
        frame.bytes.resize(1 + rng_.below(frame.bytes.size() - 1));
        ++stats_.frames_truncated;
      }
      if (rng_.chance(config_.byte_flip) && !frame.bytes.empty()) {
        const std::size_t flips = 1 + rng_.below(4);
        for (std::size_t i = 0; i < flips; ++i)
          frame.bytes[rng_.below(frame.bytes.size())] ^=
              static_cast<std::uint8_t>(1 + rng_.below(255));
        ++stats_.bytes_flipped;
      }
      if (rng_.chance(config_.garbage_tcp_options)) {
        // Claim a TCP header longer than the segment and plant an option
        // whose length byte runs past the block — net::parse() must reject
        // both without reading out of bounds.
        const std::size_t l4 = tcp_offset(frame.bytes);
        if (l4 >= 20 && frame.bytes.size() >= l4 + 20) {
          frame.bytes[l4 + 12] = 0xf0;  // data offset = 60 bytes
          if (frame.bytes.size() >= l4 + 22) {
            frame.bytes[l4 + 20] = 0xfd;  // unknown option kind
            frame.bytes[l4 + 21] = 0xff;  // hostile length
          }
          ++stats_.options_garbled;
        }
      }
      if (rng_.chance(config_.timestamp_regression)) {
        frame.timestamp = std::max(0.0, frame.timestamp - rng_.uniform(1.0, 30.0));
        ++stats_.timestamp_regressions;
      }
      if (rng_.chance(config_.duplicate_segment)) {
        out.push_back(frame);
        ++stats_.duplicates;
        ++stats_.frames_emitted;
      }
    }
    out.push_back(std::move(frame));
    ++stats_.frames_emitted;
  }
  return out;
}

std::vector<net::Packet> make_syn_flood(std::uint64_t seed, std::size_t count,
                                        const net::IpAddress& server,
                                        std::uint16_t server_port,
                                        common::SimTime start_time,
                                        double packets_per_second) {
  common::Rng rng(common::mix64(seed ^ 0x5f100d5eedf100dULL));
  std::vector<net::Packet> flood;
  flood.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src =
        net::IpAddress::v4(0x64400000u | static_cast<std::uint32_t>(rng.below(1u << 22)));
    net::Packet syn = net::make_tcp_packet(
        src, static_cast<std::uint16_t>(1024 + rng.below(60000)), server, server_port,
        net::tcpflag::kSyn, static_cast<std::uint32_t>(rng.next()), 0);
    syn.timestamp = start_time + static_cast<double>(i) / packets_per_second;
    flood.push_back(std::move(syn));
  }
  return flood;
}

}  // namespace tamper::fault
