// Deterministic packet-stream fault injector — the wire half of the
// fault-injection harness. Takes a clean stream of parsed packets and
// emits serialized frames with seeded hostile mutations applied: frame
// truncation, duplicated segments, timestamp regressions, garbage TCP
// option lengths, flipped bytes, and SYN-flood bursts aimed at the
// sampler's flow table.
//
// Faults that mutate frames are applied only to flows selected by a
// stateless seeded hash, so tests can ask `flow_is_faulted()` and assert
// that every *untouched* flow classifies exactly as in a no-fault run.
// SYN-flood bursts are inserted immediately before real SYNs (never
// between a flow's own packets) using addresses from 100.64.0.0/10, so
// they stress the flow table without colliding with real flows.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "net/packet.h"

namespace tamper::fault {

/// A serialized frame with its capture timestamp — ready for
/// net::PcapWriter::write_raw() or direct parsing.
struct TimedFrame {
  common::SimTime timestamp = 0.0;
  std::vector<std::uint8_t> bytes;
};

class FaultInjector {
 public:
  struct Config {
    /// Fraction of flows selected (by seeded hash) for frame mutations.
    double flow_fault_fraction = 0.3;
    // Per-frame fault probabilities, applied to faulted flows only.
    double frame_truncation = 0.25;
    double byte_flip = 0.25;
    double garbage_tcp_options = 0.2;
    double duplicate_segment = 0.2;
    double timestamp_regression = 0.2;
    /// Probability that a SYN-flood burst precedes a real opening SYN.
    double flood_burst_probability = 0.0;
    std::size_t flood_burst_size = 64;
  };

  struct Stats {
    std::uint64_t frames_emitted = 0;
    std::uint64_t frames_truncated = 0;
    std::uint64_t bytes_flipped = 0;
    std::uint64_t options_garbled = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t timestamp_regressions = 0;
    std::uint64_t flood_syns = 0;
  };

  explicit FaultInjector(std::uint64_t seed) : FaultInjector(seed, Config()) {}
  FaultInjector(std::uint64_t seed, Config config)
      : config_(config), seed_(seed), rng_(common::mix64(seed ^ 0xfa017ec7edbadf00ULL)) {}

  /// Serialize the stream, injecting faults. Call once per campaign.
  [[nodiscard]] std::vector<TimedFrame> run(const std::vector<net::Packet>& stream);

  /// Whether frame mutations target this flow (stateless; same answer
  /// before and after run()).
  [[nodiscard]] bool flow_is_faulted(const net::IpAddress& client, std::uint16_t client_port,
                                     const net::IpAddress& server,
                                     std::uint16_t server_port) const noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void emit_flood_burst(const net::Packet& trigger, std::vector<TimedFrame>& out);

  Config config_;
  std::uint64_t seed_;
  common::Rng rng_;
  Stats stats_;
};

/// Standalone SYN-flood generator: `count` bare SYNs from distinct
/// 100.64.0.0/10 sources toward one server — for aiming directly at a
/// ConnectionSampler's flow table without going through pcap bytes.
[[nodiscard]] std::vector<net::Packet> make_syn_flood(std::uint64_t seed, std::size_t count,
                                                      const net::IpAddress& server,
                                                      std::uint16_t server_port,
                                                      common::SimTime start_time,
                                                      double packets_per_second = 10000.0);

}  // namespace tamper::fault
