#include "fault/chaos.h"

#include <chrono>
#include <thread>

namespace tamper::fault {

void ChaosSchedule::ingest_tick(std::uint64_t tick) {
  if (crash_at(tick)) {
    ++stats_.crashes_injected;
    throw InjectedCrash{};
  }
  if (stall_at(tick)) {
    ++stats_.stalls_injected;
    std::this_thread::sleep_for(std::chrono::duration<double>(config_.stall_seconds));
  }
}

bool ChaosSchedule::sink_should_fail() {
  if (sink_outage_remaining_ > 0) {
    --sink_outage_remaining_;
    ++stats_.sink_failures_injected;
    return true;
  }
  if (sink_rng_.uniform() < config_.sink_failure_probability) {
    sink_outage_remaining_ = config_.sink_outage_length > 0 ? config_.sink_outage_length - 1 : 0;
    ++stats_.sink_failures_injected;
    return true;
  }
  return false;
}

bool ChaosSchedule::checkpoint_should_fail() {
  if (sink_rng_.uniform() < config_.checkpoint_failure_probability) {
    ++stats_.checkpoint_failures_injected;
    return true;
  }
  return false;
}

std::optional<std::uint64_t> ChaosSchedule::pop_kill_point(
    common::PopId pop, std::uint64_t samples) const noexcept {
  if (samples == 0) return std::nullopt;
  if (pop_roll(pop, 0, 0xf1ee7c8a54ULL) >= config_.fleet.pop_crash_probability)
    return std::nullopt;
  // Uniform over the middle half [samples/4, 3*samples/4): the kill always
  // lands after some progress and before the drain, so every campaign that
  // fires one actually exercises resume.
  const std::uint64_t lo = samples / 4;
  const std::uint64_t span = samples - samples / 2;
  if (span == 0) return lo;
  return lo + pop_hash(pop, 1, 0xf1ee7c8a54ULL) % span;
}

bool ChaosSchedule::pop_partitioned(common::PopId pop, common::EpochId epoch) const noexcept {
  const std::uint64_t len =
      config_.fleet.partition_epochs > 0 ? config_.fleet.partition_epochs : 1;
  const std::uint64_t last = epoch.value();
  const std::uint64_t first = last >= len - 1 ? last - (len - 1) : 0;
  for (std::uint64_t e = first; e <= last; ++e)
    if (pop_roll(pop, e, 0xf1ee79a87ULL) < config_.fleet.partition_probability) return true;
  return false;
}

bool ChaosSchedule::pop_straggles(common::PopId pop, common::EpochId epoch) const noexcept {
  return pop_roll(pop, epoch.value(), 0xf1ee57a3ULL) < config_.fleet.straggler_probability;
}

std::int64_t ChaosSchedule::pop_clock_skew_sec(common::PopId pop) const noexcept {
  if (pop_roll(pop, 0, 0xf1ee5e3aULL) >= config_.fleet.skew_probability) return 0;
  const std::int64_t bound = config_.fleet.max_skew_sec;
  if (bound <= 0) return 0;
  const std::uint64_t h = pop_hash(pop, 1, 0xf1ee5e3aULL);
  return static_cast<std::int64_t>(h % static_cast<std::uint64_t>(2 * bound + 1)) - bound;
}

std::vector<std::uint8_t> truncated_prefix(const std::vector<std::uint8_t>& bytes,
                                           std::size_t keep) {
  if (keep > bytes.size()) keep = bytes.size();
  return std::vector<std::uint8_t>(bytes.begin(),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace tamper::fault
