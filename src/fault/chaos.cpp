#include "fault/chaos.h"

#include <chrono>
#include <thread>

namespace tamper::fault {

void ChaosSchedule::ingest_tick(std::uint64_t tick) {
  if (crash_at(tick)) {
    ++stats_.crashes_injected;
    throw InjectedCrash{};
  }
  if (stall_at(tick)) {
    ++stats_.stalls_injected;
    std::this_thread::sleep_for(std::chrono::duration<double>(config_.stall_seconds));
  }
}

bool ChaosSchedule::sink_should_fail() {
  if (sink_outage_remaining_ > 0) {
    --sink_outage_remaining_;
    ++stats_.sink_failures_injected;
    return true;
  }
  if (sink_rng_.uniform() < config_.sink_failure_probability) {
    sink_outage_remaining_ = config_.sink_outage_length > 0 ? config_.sink_outage_length - 1 : 0;
    ++stats_.sink_failures_injected;
    return true;
  }
  return false;
}

bool ChaosSchedule::checkpoint_should_fail() {
  if (sink_rng_.uniform() < config_.checkpoint_failure_probability) {
    ++stats_.checkpoint_failures_injected;
    return true;
  }
  return false;
}

std::vector<std::uint8_t> truncated_prefix(const std::vector<std::uint8_t>& bytes,
                                           std::size_t keep) {
  if (keep > bytes.size()) keep = bytes.size();
  return std::vector<std::uint8_t>(bytes.begin(),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace tamper::fault
