// Seeded overload-load generator — the traffic half of the overload-control
// chaos harness (the wire-corruption half lives in injector.h). Produces a
// deterministic schedule of connection samples whose offered rate follows
// one of four hostile shapes:
//
//   * kSustainedRate — a flat 10x (configurable) multiple of the base rate
//     for the whole run: the "provisioned for 1x, offered 10x" case the
//     degradation ladder exists for.
//   * kBurstTrain   — base-rate background with periodic short bursts at a
//     much higher rate: exercises hysteresis (a single burst must not walk
//     the service down the whole ladder).
//   * kSynFlood     — sustained overload where most samples are bare SYNs
//     from 100.64.0.0/10 (embryonic flows): exercises the kEmbryonicShed
//     rung and the sampler's flow-table bound.
//   * kSlowSink     — moderate offered load, but the report sink stalls in
//     periodic windows (sink_stalled_at): exercises spool bounding and the
//     circuit breaker instead of the admission gate.
//
// Everything is a pure function of (seed, config): two generators built the
// same way emit byte-identical schedules, which is what makes the ≥30-seed
// campaigns in tests/test_control.cpp reproducible evidence rather than
// flake.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "capture/sample.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace tamper::fault {

enum class OverloadScenario : std::uint8_t {
  kSustainedRate = 0,
  kBurstTrain = 1,
  kSynFlood = 2,
  kSlowSink = 3,
};

[[nodiscard]] constexpr std::array<OverloadScenario, 4> all_overload_scenarios() noexcept {
  return {OverloadScenario::kSustainedRate, OverloadScenario::kBurstTrain,
          OverloadScenario::kSynFlood, OverloadScenario::kSlowSink};
}

/// Stable snake_case scenario name (campaign logs, test labels).
[[nodiscard]] const char* name(OverloadScenario scenario) noexcept;

/// One offered sample: when it arrives and what it is. `flood` marks the
/// embryonic bare-SYN decoys (never real flows), so campaigns can assert
/// the embryonic-shed rung drops exactly these.
struct OverloadEvent {
  common::SimTime at = 0.0;
  capture::ConnectionSample sample;
  bool flood = false;
};

class OverloadGenerator {
 public:
  struct Config {
    OverloadScenario scenario = OverloadScenario::kSustainedRate;
    /// Schedule length in simulated seconds.
    double duration_sec = 30.0;
    /// The "1x" provisioned rate, samples/second.
    double base_rate_per_sec = 200.0;
    /// kSustainedRate / kSynFlood offered-rate multiplier.
    double overload_factor = 10.0;
    // kBurstTrain: a burst_length_sec burst at burst_factor x base every
    // burst_period_sec, base rate in between.
    double burst_period_sec = 5.0;
    double burst_length_sec = 1.0;
    double burst_factor = 20.0;
    /// kSynFlood: fraction of offered samples that are bare-SYN decoys.
    double flood_fraction = 0.9;
    // kSlowSink: the sink fails deliveries for stall_length_sec out of
    // every stall_period_sec.
    double stall_period_sec = 10.0;
    double stall_length_sec = 4.0;
  };

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t flood_events = 0;
  };

  explicit OverloadGenerator(std::uint64_t seed) : OverloadGenerator(seed, Config()) {}
  OverloadGenerator(std::uint64_t seed, Config config);

  /// Build the full offered-load schedule, in nondecreasing `at` order.
  /// Call once per campaign.
  [[nodiscard]] std::vector<OverloadEvent> run();

  /// kSlowSink: whether the report sink should be failing deliveries at
  /// simulated time `t`. Pure function of config; false for the other
  /// scenarios.
  [[nodiscard]] bool sink_stalled_at(common::SimTime t) const noexcept;

  /// Offered rate (samples/second) at simulated time `t` — the schedule's
  /// envelope, exposed so tests can assert the shape.
  [[nodiscard]] double rate_at(common::SimTime t) const noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] capture::ConnectionSample make_flow_sample(common::SimTime at);
  [[nodiscard]] capture::ConnectionSample make_flood_sample(common::SimTime at);

  Config config_;
  common::Rng rng_;
  Stats stats_;
  std::uint32_t next_flow_ = 0;
  std::uint32_t next_decoy_ = 0;
};

}  // namespace tamper::fault
