// Seeded runtime-fault schedule — the third leg of the fault harness.
//
// PcapCorruptor attacks bytes, FaultInjector attacks packet streams; a
// ChaosSchedule attacks the *runtime* of the streaming service: worker
// crashes and stalls at seeded ticks, sink delivery outages, and
// checkpoint-write failures (the ENOSPC model). Per-tick decisions are a
// stateless hash of (seed, tick), so the schedule is identical across
// stage restarts and reproducible from the seed alone. Sink outages are
// stateful runs: one trigger fails the next `sink_outage_length`
// deliveries, modelling an endpoint that goes down and comes back.
//
// Checkpoint truncation-at-every-offset campaigns use truncated_prefix()
// directly; see tests/test_service.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace tamper::fault {

/// The exception a chaos ingest hook throws to kill a worker stage.
struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("chaos: injected stage crash") {}
};

class ChaosSchedule {
 public:
  struct Config {
    double crash_probability = 0.0;   ///< per tick: worker stage crash
    double stall_probability = 0.0;   ///< per tick: worker stage stall
    double stall_seconds = 0.05;      ///< how long an injected stall sleeps
    double sink_failure_probability = 0.0;  ///< per delivery: outage starts
    int sink_outage_length = 3;             ///< deliveries failed per outage
    double checkpoint_failure_probability = 0.0;  ///< per save: write fails

    /// Fleet-level events (see fleet::run_campaign). All decisions are a
    /// stateless hash of (seed, pop, x) so a campaign replays identically
    /// from its seed regardless of PoP count or scheduling order.
    struct FleetConfig {
      double pop_crash_probability = 0.0;   ///< per PoP: kill -9 mid-feed
      double partition_probability = 0.0;   ///< per (pop, epoch): PoP<->merger cut
      std::uint64_t partition_epochs = 2;   ///< epochs a partition lasts
      double straggler_probability = 0.0;   ///< per (pop, epoch): partial held past watermark
      double skew_probability = 0.0;        ///< per PoP: clock skew applied
      std::int64_t max_skew_sec = 3;        ///< |skew| bound, seconds
    };
    FleetConfig fleet;
  };

  ChaosSchedule(std::uint64_t seed, Config config)
      : config_(config), seed_(seed), sink_rng_(common::mix64(seed ^ 0xc4405ced01eULL)) {}

  /// Deterministic per-tick decisions (stateless in tick).
  [[nodiscard]] bool crash_at(std::uint64_t tick) const noexcept {
    return tick_roll(tick, 0x0c4a54ULL) < config_.crash_probability;
  }
  [[nodiscard]] bool stall_at(std::uint64_t tick) const noexcept {
    return !crash_at(tick) && tick_roll(tick, 0x57a11ULL) < config_.stall_probability;
  }

  /// Ingest hook body: throws InjectedCrash or sleeps per the schedule.
  /// Wire as `cfg.ingest_hook = [&](std::uint64_t t) { chaos.ingest_tick(t); }`.
  void ingest_tick(std::uint64_t tick);

  /// Per-delivery sink fault (stateful outage runs).
  [[nodiscard]] bool sink_should_fail();

  /// Per-save checkpoint write fault.
  [[nodiscard]] bool checkpoint_should_fail();

  // Fleet-level decisions. Stateless in (pop, x): any component can re-ask
  // at any time and get the same answer, which is what makes kill-at-any-
  // point campaigns replayable.

  /// Sample index (within the samples routed to `pop`, which has `samples`
  /// of them) at which the PoP is killed — or nullopt for no kill. The kill
  /// point is uniform over the middle half of the feed so a crash always
  /// lands after some progress and before the drain.
  [[nodiscard]] std::optional<std::uint64_t> pop_kill_point(
      common::PopId pop, std::uint64_t samples) const noexcept;

  /// True when the PoP<->merger link is partitioned during `epoch`. A
  /// partition triggered at epoch e covers [e, e + partition_epochs), so
  /// the check scans the trigger window ending at `epoch`.
  [[nodiscard]] bool pop_partitioned(common::PopId pop, common::EpochId epoch) const noexcept;

  /// True when the PoP's partial for `epoch` straggles past the watermark.
  [[nodiscard]] bool pop_straggles(common::PopId pop, common::EpochId epoch) const noexcept;

  /// Per-PoP clock skew in seconds, in [-max_skew_sec, +max_skew_sec]
  /// (0 unless the skew roll fires).
  [[nodiscard]] std::int64_t pop_clock_skew_sec(common::PopId pop) const noexcept;

  struct Stats {
    std::uint64_t crashes_injected = 0;
    std::uint64_t stalls_injected = 0;
    std::uint64_t sink_failures_injected = 0;
    std::uint64_t checkpoint_failures_injected = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] double tick_roll(std::uint64_t tick, std::uint64_t salt) const noexcept {
    const std::uint64_t h = common::mix64(seed_ ^ common::mix64(tick ^ salt));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  [[nodiscard]] std::uint64_t pop_hash(common::PopId pop, std::uint64_t x,
                                       std::uint64_t salt) const noexcept {
    return common::mix64(
        seed_ ^ common::mix64((static_cast<std::uint64_t>(pop.value()) << 32 ^ x) ^ salt));
  }
  [[nodiscard]] double pop_roll(common::PopId pop, std::uint64_t x,
                                std::uint64_t salt) const noexcept {
    return static_cast<double>(pop_hash(pop, x, salt) >> 11) * 0x1.0p-53;
  }

  Config config_;
  std::uint64_t seed_;
  common::Rng sink_rng_;
  int sink_outage_remaining_ = 0;
  Stats stats_;
};

/// The first `keep` bytes of a serialized artifact — the checkpoint
/// truncation fault (kill mid-write without the atomic-rename protection).
[[nodiscard]] std::vector<std::uint8_t> truncated_prefix(
    const std::vector<std::uint8_t>& bytes, std::size_t keep);

}  // namespace tamper::fault
