// Deterministic byte-level pcap corruptor — the file-format half of the
// fault-injection harness. Given the bytes of a pcap savefile, it applies a
// seeded sequence of the corruptions hostile or broken producers emit:
// truncated global/record headers, absurd incl_len fields, flipped bytes,
// and garbage blocks spliced mid-file. Consumers (net::PcapReader in
// lenient mode) must survive every output without crashing or ballooning
// memory; tests/test_faults.cpp runs seeded campaigns asserting exactly
// that.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace tamper::fault {

class PcapCorruptor {
 public:
  struct Config {
    /// Number of corruption operations applied per corrupt() call.
    std::size_t mutations = 4;
    /// Relative weights of each operation (see Summary for the list).
    double weight_truncate_global_header = 1.0;
    double weight_truncate_tail = 3.0;
    double weight_absurd_length = 4.0;
    double weight_flip_bytes = 6.0;
    double weight_insert_garbage = 4.0;
  };

  /// What a corrupt() call actually did (accumulates across calls).
  struct Summary {
    std::uint64_t global_header_truncations = 0;
    std::uint64_t tail_truncations = 0;
    std::uint64_t absurd_lengths = 0;  ///< incl_len rewritten to a hostile value
    std::uint64_t byte_flips = 0;
    std::uint64_t garbage_insertions = 0;
  };

  explicit PcapCorruptor(std::uint64_t seed) : PcapCorruptor(seed, Config()) {}
  PcapCorruptor(std::uint64_t seed, Config config)
      : config_(config), rng_(common::mix64(seed ^ 0xc0221f7ed0c0de5eULL)) {}

  /// Return a corrupted copy of `bytes`. The input must be a little-endian
  /// microsecond pcap (what net::PcapWriter emits); other inputs only
  /// receive the structure-free corruptions (flips, truncation, garbage).
  [[nodiscard]] std::vector<std::uint8_t> corrupt(std::vector<std::uint8_t> bytes);

  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }

 private:
  /// Byte offsets of each 16-byte record header in `bytes`, walked from the
  /// declared lengths; stops at the first inconsistency.
  [[nodiscard]] static std::vector<std::size_t> record_offsets(
      const std::vector<std::uint8_t>& bytes);

  Config config_;
  common::Rng rng_;
  Summary summary_;
};

}  // namespace tamper::fault
