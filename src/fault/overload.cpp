#include "fault/overload.h"

#include <cmath>
#include <string>

#include "net/headers.h"

namespace tamper::fault {
namespace {

// The HTTP request head is crafted as raw bytes so the analysis side's DPI
// finds a Host without this module depending on appproto.
std::vector<std::uint8_t> http_get_payload(std::uint32_t flow) {
  std::string head = "GET / HTTP/1.1\r\nHost: load-";
  head += std::to_string(flow);
  head += ".test\r\nUser-Agent: overloadgen\r\n\r\n";
  return {head.begin(), head.end()};
}

}  // namespace

const char* name(OverloadScenario scenario) noexcept {
  switch (scenario) {
    case OverloadScenario::kSustainedRate:
      return "sustained_rate";
    case OverloadScenario::kBurstTrain:
      return "burst_train";
    case OverloadScenario::kSynFlood:
      return "syn_flood";
    case OverloadScenario::kSlowSink:
      return "slow_sink";
  }
  return "sustained_rate";
}

OverloadGenerator::OverloadGenerator(std::uint64_t seed, Config config)
    : config_(config), rng_(common::mix64(seed ^ 0x0bea10adf100d5ULL)) {}

double OverloadGenerator::rate_at(common::SimTime t) const noexcept {
  const double base = config_.base_rate_per_sec;
  switch (config_.scenario) {
    case OverloadScenario::kSustainedRate:
    case OverloadScenario::kSynFlood:
      return base * config_.overload_factor;
    case OverloadScenario::kBurstTrain: {
      if (config_.burst_period_sec <= 0) return base;
      const double phase = std::fmod(t, config_.burst_period_sec);
      return phase < config_.burst_length_sec ? base * config_.burst_factor : base;
    }
    case OverloadScenario::kSlowSink:
      return base;
  }
  return base;
}

bool OverloadGenerator::sink_stalled_at(common::SimTime t) const noexcept {
  if (config_.scenario != OverloadScenario::kSlowSink) return false;
  if (config_.stall_period_sec <= 0) return false;
  return std::fmod(t, config_.stall_period_sec) < config_.stall_length_sec;
}

capture::ConnectionSample OverloadGenerator::make_flow_sample(common::SimTime at) {
  const std::uint32_t flow = next_flow_++;
  capture::ConnectionSample s;
  // Clients spread over 10.0.0.0/8, servers over 192.0.2.0/24 (TEST-NET-1),
  // both seeded so distinct flows never collide in the sampler's table.
  s.client_ip = net::IpAddress::v4(0x0a000000u | (rng_.next() & 0x00ffffffu));
  s.server_ip = net::IpAddress::v4(0xc0000200u | static_cast<std::uint32_t>(flow % 256));
  s.client_port = static_cast<std::uint16_t>(49152 + (flow % 16384));
  s.server_port = 80;
  const auto ts = static_cast<std::int64_t>(at);
  const auto seq = static_cast<std::uint32_t>(rng_.next());

  capture::ObservedPacket syn;
  syn.ts_sec = ts;
  syn.flags = net::tcpflag::kSyn;
  syn.seq = seq;
  syn.window = 64240;
  syn.ttl = 57;
  s.packets.push_back(syn);

  capture::ObservedPacket ack;
  ack.ts_sec = ts;
  ack.flags = net::tcpflag::kAck;
  ack.seq = seq + 1;
  ack.ack = 1;
  ack.window = 64240;
  ack.ttl = 57;
  s.packets.push_back(ack);

  capture::ObservedPacket data;
  data.ts_sec = ts + 1;
  data.flags = static_cast<std::uint8_t>(net::tcpflag::kPsh | net::tcpflag::kAck);
  data.seq = seq + 1;
  data.ack = 1;
  data.window = 64240;
  data.ttl = 57;
  data.payload = http_get_payload(flow);
  data.payload_len = static_cast<std::uint16_t>(data.payload.size());
  s.packets.push_back(data);

  s.observation_end_sec = ts + 4;
  return s;
}

capture::ConnectionSample OverloadGenerator::make_flood_sample(common::SimTime at) {
  const std::uint32_t decoy = next_decoy_++;
  capture::ConnectionSample s;
  // Decoy sources live in 100.64.0.0/10 like injector.h's SYN floods, so
  // they are recognizably never real flows.
  s.client_ip = net::IpAddress::v4(0x64400000u | ((rng_.next() ^ decoy) & 0x003fffffu));
  s.server_ip = net::IpAddress::v4(0xc0000263u);  // 192.0.2.99
  s.client_port = static_cast<std::uint16_t>(1024 + (decoy % 60000));
  s.server_port = 443;
  const auto ts = static_cast<std::int64_t>(at);

  capture::ObservedPacket syn;
  syn.ts_sec = ts;
  syn.flags = net::tcpflag::kSyn;
  syn.seq = static_cast<std::uint32_t>(rng_.next());
  syn.window = 1024;
  syn.ttl = 244;
  s.packets.push_back(syn);

  s.observation_end_sec = ts + 1;
  return s;
}

std::vector<OverloadEvent> OverloadGenerator::run() {
  std::vector<OverloadEvent> schedule;
  double t = 0.0;
  while (t < config_.duration_sec) {
    const double rate = rate_at(t);
    if (rate <= 0) break;
    OverloadEvent ev;
    ev.at = t;
    ev.flood = config_.scenario == OverloadScenario::kSynFlood &&
               rng_.uniform() < config_.flood_fraction;
    ev.sample = ev.flood ? make_flood_sample(t) : make_flow_sample(t);
    ++stats_.events;
    if (ev.flood) ++stats_.flood_events;
    schedule.push_back(std::move(ev));
    t += 1.0 / rate;
  }
  return schedule;
}

}  // namespace tamper::fault
