#include "fault/corruptor.h"

#include <algorithm>
#include <array>

namespace tamper::fault {

namespace {

constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;

std::uint32_t get_u32le(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) | (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

void put_u32le(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
  b[off + 2] = static_cast<std::uint8_t>(v >> 16);
  b[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::vector<std::size_t> PcapCorruptor::record_offsets(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::size_t> offsets;
  if (bytes.size() < kGlobalHeaderSize || get_u32le(bytes, 0) != 0xa1b2c3d4u)
    return offsets;
  std::size_t pos = kGlobalHeaderSize;
  while (pos + kRecordHeaderSize <= bytes.size()) {
    const std::uint32_t caplen = get_u32le(bytes, pos + 8);
    if (caplen > bytes.size() || pos + kRecordHeaderSize + caplen > bytes.size()) break;
    offsets.push_back(pos);
    pos += kRecordHeaderSize + caplen;
  }
  return offsets;
}

std::vector<std::uint8_t> PcapCorruptor::corrupt(std::vector<std::uint8_t> bytes) {
  for (std::size_t m = 0; m < config_.mutations && !bytes.empty(); ++m) {
    const std::array<double, 5> weights{
        config_.weight_truncate_global_header, config_.weight_truncate_tail,
        config_.weight_absurd_length, config_.weight_flip_bytes,
        config_.weight_insert_garbage};
    switch (rng_.pick_weighted(weights)) {
      case 0: {  // cut into (or entirely drop) the 24-byte global header
        bytes.resize(rng_.below(std::min(bytes.size(), kGlobalHeaderSize)));
        ++summary_.global_header_truncations;
        break;
      }
      case 1: {  // shear off the tail, usually mid-record
        const std::size_t keep = kGlobalHeaderSize < bytes.size()
                                     ? kGlobalHeaderSize +
                                           rng_.below(bytes.size() - kGlobalHeaderSize)
                                     : rng_.below(bytes.size());
        bytes.resize(keep);
        ++summary_.tail_truncations;
        break;
      }
      case 2: {  // rewrite a record's incl_len to an attacker value
        const auto offsets = record_offsets(bytes);
        if (offsets.empty()) break;
        const std::size_t rec = offsets[rng_.below(offsets.size())];
        // Mix absurd (multi-GB) and merely-oversize lengths so both the
        // allocation cap and the resync path get exercised.
        const std::uint32_t hostile =
            rng_.chance(0.5) ? 0xffffffffu - static_cast<std::uint32_t>(rng_.below(1 << 20))
                             : (1u << 20) + static_cast<std::uint32_t>(rng_.below(1u << 27));
        put_u32le(bytes, rec + 8, hostile);
        ++summary_.absurd_lengths;
        break;
      }
      case 3: {  // flip a handful of bytes anywhere in the file
        const std::size_t flips = 1 + rng_.below(8);
        for (std::size_t i = 0; i < flips; ++i) {
          const std::size_t off = rng_.below(bytes.size());
          bytes[off] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
        }
        ++summary_.byte_flips;
        break;
      }
      default: {  // splice a garbage block mid-file
        const std::size_t len = 16 + rng_.below(512);
        std::vector<std::uint8_t> garbage(len);
        for (auto& g : garbage) g = static_cast<std::uint8_t>(rng_.below(256));
        const std::size_t at =
            bytes.size() > kGlobalHeaderSize
                ? kGlobalHeaderSize + rng_.below(bytes.size() - kGlobalHeaderSize)
                : bytes.size();
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at), garbage.begin(),
                     garbage.end());
        ++summary_.garbage_insertions;
        break;
      }
    }
  }
  return bytes;
}

}  // namespace tamper::fault
