#include "world/anycast.h"

#include "common/rng.h"

namespace tamper::world {

AnycastMap::AnycastMap(std::uint32_t pop_count, std::uint64_t seed)
    : seed_(common::mix64(seed ^ 0xa27ca57ULL)), alive_(pop_count, true) {}

void AnycastMap::set_alive(common::PopId pop, bool alive) {
  alive_[pop.value()] = alive;
}

std::uint32_t AnycastMap::alive_count() const noexcept {
  std::uint32_t n = 0;
  for (bool a : alive_)
    if (a) ++n;
  return n;
}

std::uint64_t AnycastMap::prefix_key(const net::IpAddress& client) noexcept {
  const auto& b = client.bytes();
  if (client.is_v4()) {
    // v4-mapped layout: the address lives in bytes [12..15]; /16 keeps the
    // first two of them.
    return (0x4ULL << 60) | (static_cast<std::uint64_t>(b[12]) << 8) | b[13];
  }
  return (0x6ULL << 60) | (static_cast<std::uint64_t>(b[0]) << 24) |
         (static_cast<std::uint64_t>(b[1]) << 16) |
         (static_cast<std::uint64_t>(b[2]) << 8) | b[3];
}

std::optional<common::PopId> AnycastMap::route(const net::IpAddress& client) const {
  const std::uint64_t key = common::mix64(prefix_key(client) ^ seed_);
  std::optional<common::PopId> best;
  std::uint64_t best_score = 0;
  for (std::uint32_t pop = 0; pop < alive_.size(); ++pop) {
    if (!alive_[pop]) continue;
    const std::uint64_t score = common::mix64(key ^ (0x90bULL + pop));
    if (!best || score > best_score) {
      best = common::PopId(pop);
      best_score = score;
    }
  }
  return best;
}

}  // namespace tamper::world
