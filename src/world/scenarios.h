// Named, ready-made scenarios — the canonical workloads behind the paper's
// experiments, packaged so library users (and the examples/benches) build
// them in one call instead of hand-assembling policy edits and modifiers.
#pragma once

#include <memory>

#include "world/traffic.h"
#include "world/world.h"

namespace tamper::world {

struct Scenario {
  std::unique_ptr<World> world;
  TrafficConfig traffic;

  [[nodiscard]] TrafficGenerator make_generator() const {
    return TrafficGenerator(*world, traffic);
  }
};

/// The paper's measurement window: all countries, 2023-01-12 .. 2023-01-26,
/// default client-population anomaly rates.
[[nodiscard]] Scenario global_january_2023(std::uint64_t seed = 42);

/// §5.6: Iran around the September 2022 protests — protest-intensity ramp on
/// blocked-content demand and enforcement, method mix shifted toward
/// handshake-stage blocking, enforcement concentrated on mobile carriers.
/// Generate with `generate_at(country_index("IR"), t)` over the window.
[[nodiscard]] Scenario iran_protests_2022(std::uint64_t seed = 77);

/// §4.2 counterfactual: the same global window with upstream DDoS scrubbing
/// disabled, so SYN-flood residue reaches the tap.
[[nodiscard]] Scenario global_unscrubbed(std::uint64_t seed = 42);

/// Appendix B workload: elevated path loss plus residual censorship, the
/// conditions under which signature flapping (Fig. 10) is most visible.
[[nodiscard]] Scenario residual_flapping(std::uint64_t seed = 99);

/// Protest-intensity curve used by iran_protests_2022 (exposed for tests
/// and custom scenarios): 0 before `start`, ramping toward 1 over ~2 days,
/// with an evening emphasis in the given timezone.
[[nodiscard]] double protest_intensity(common::SimTime t, common::SimTime start,
                                       double utc_offset_hours);

}  // namespace tamper::world
