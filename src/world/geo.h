// Synthetic geography: countries, autonomous systems, and address space.
//
// Stands in for the MaxMind-style attribution the paper uses to aggregate
// results by source country and AS (§3.3, §5.1). Every country owns a set
// of ASNs; every ASN owns one IPv4 /16 and one IPv6 /32, so attribution of
// a sampled packet is an O(1) prefix lookup — deterministic and consistent
// in both directions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/ip_address.h"

namespace tamper::world {

struct AsInfo {
  common::AsnId asn{};
  std::string country;       ///< ISO-3166 alpha-2
  double weight = 1.0;       ///< share of the country's client traffic
  net::IpPrefix prefix_v4;
  net::IpPrefix prefix_v6;
  bool mobile = false;       ///< cellular network (Iran case study, §5.6)
};

class GeoDatabase {
 public:
  /// `asn_counts` maps country code -> number of ASNs to allocate.
  GeoDatabase(const std::vector<std::pair<std::string, int>>& asn_counts,
              std::uint64_t seed);

  [[nodiscard]] const std::vector<AsInfo>& ases() const noexcept { return ases_; }
  [[nodiscard]] const AsInfo& as_by_number(common::AsnId asn) const;
  /// ASNs registered to a country, most-traffic first.
  [[nodiscard]] const std::vector<common::AsnId>& country_ases(const std::string& cc) const;

  /// Weighted pick of one of a country's ASNs.
  [[nodiscard]] const AsInfo& sample_as(const std::string& cc, common::Rng& rng) const;

  /// Random client address within the AS's prefix.
  [[nodiscard]] net::IpAddress sample_client_ip(const AsInfo& as_info, bool ipv6,
                                                common::Rng& rng) const;

  /// Reverse attribution; nullopt for addresses outside any allocated block
  /// (e.g. the CDN's own ranges).
  [[nodiscard]] std::optional<common::AsnId> lookup_asn(const net::IpAddress& addr) const;
  [[nodiscard]] std::optional<std::string> lookup_country(const net::IpAddress& addr) const;

 private:
  std::vector<AsInfo> ases_;
  std::unordered_map<common::AsnId, std::size_t> by_asn_;
  std::unordered_map<std::string, std::vector<common::AsnId>> by_country_;
  std::unordered_map<std::uint32_t, std::size_t> by_v4_hi_;  ///< /16 value -> index
  std::unordered_map<std::uint64_t, std::size_t> by_v6_hi_;  ///< top 64 bits -> index
};

}  // namespace tamper::world
