// End-to-end traffic generation: world -> client/server endpoints ->
// middlebox path -> server tap -> ConnectionSample.
//
// Each generated connection carries a GroundTruth record alongside the
// sample. Ground truth exists only for validation and calibration; the
// classifier and the analyses never read it (the analyses re-derive
// country/AS/domain the way the paper does: geo lookup on the source
// address, DPI on the first data payload).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "capture/sample.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "tcp/endpoint.h"
#include "world/world.h"

namespace tamper::world {

struct GroundTruth {
  std::string country;
  common::AsnId asn{};
  std::string domain;
  std::size_t domain_rank = static_cast<std::size_t>(-1);
  Category category = Category::kBusiness;
  appproto::AppProtocol protocol = appproto::AppProtocol::kUnknown;
  bool ipv6 = false;
  tcp::ClientKind client_kind = tcp::ClientKind::kNormal;
  bool scanner = false;       ///< ZMap-style probe
  bool tamper_armed = false;  ///< policy selected a tampering method
  bool tampered = false;      ///< the middlebox actually fired
  std::string method;         ///< catalog preset name when armed
  common::SimTime start_time = 0.0;
};

struct LabeledConnection {
  capture::ConnectionSample sample;
  GroundTruth truth;
  /// Wire packets as they arrived at the server, before capture degradation
  /// (only populated when TrafficConfig::keep_raw_inbound is set).
  std::vector<net::Packet> raw_inbound;
};

struct TrafficConfig {
  common::SimTime window_start = common::from_civil(2023, 1, 12);
  common::SimTime window_end = common::from_civil(2023, 1, 26);

  // Client-population anomaly rates (fractions of all connections). These
  // populate the benign side of the possibly-tampered pool (§4.2).
  double zmap_rate = 0.0006;           ///< scanners (fixed IP-ID 54321, TTL 255)
  double syn_only_rate = 0.085;        ///< spoofed/flood SYNs surviving scrub
  double he_rst_rate = 0.007;          ///< Happy Eyeballs loser, RST cancel
  double he_rst_ack_rate = 0.007;      ///< ... RST+ACK-style cancel
  double he_vanish_rate = 0.007;       ///< ... silent drop (curl)
  double preconnect_rate = 0.022;      ///< speculative connections never used
  double vanish_after_request_rate = 0.003;
  double abort_mid_transfer_rate = 0.062;  ///< user hit stop mid-download
  double rst_after_fin_rate = 0.006;       ///< close() racing data ("other" stage)

  double loss_rate = 0.0015;           ///< independent per-packet path loss
  double http_second_get_prob = 0.45;  ///< pipelined second GET on HTTP
  double tls_continuation_prob = 0.55; ///< client records after ClientHello

  // ---- Capture-pipeline knobs (paper defaults; ablation studies vary them) ----
  std::size_t max_logged_packets = 10;   ///< first-N packets per connection
  double timestamp_scale = 1.0;          ///< log ticks per second (1 = paper)
  bool keep_raw_inbound = false;         ///< retain wire packets on LabeledConnection

  // ---- Residual censorship (§B): once a (client, domain) pair triggers a
  // censor, follow-up connections are blocked earlier for a while ----
  double residual_block_seconds = 0.0;   ///< 0 disables the mechanism
  double residual_probability = 0.5;     ///< chance a firing arms the state
  std::string residual_preset = "syn_rst";

  /// Scenario hooks: adjust blocked-content demand / enforcement over time
  /// (e.g. the Iran protest ramp in §5.6). Arguments: country spec, start
  /// time, and the policy's base value; return the adjusted value.
  std::function<double(const CountrySpec&, common::SimTime, double)> interest_modifier;
  std::function<double(const CountrySpec&, common::SimTime, double)> enforcement_modifier;

  std::uint64_t seed = 0x7ea7f1c;
};

/// Optional per-connection overrides for targeted workloads (repeat visits
/// by the same client for Fig. 10, forced protocols, case studies).
struct VisitPin {
  std::optional<net::IpAddress> client_ip;
  std::optional<common::AsnId> asn;
  std::optional<std::size_t> domain_rank;
  std::optional<appproto::AppProtocol> protocol;
  std::optional<tcp::ClientKind> client_kind;
  std::optional<bool> ipv6;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const World& world, TrafficConfig config);

  /// One connection at a volume-weighted random (country, time).
  [[nodiscard]] LabeledConnection generate_one();

  /// One connection pinned to a country and start time (case studies).
  [[nodiscard]] LabeledConnection generate_at(int country_index, common::SimTime t) {
    return generate_pinned(country_index, t, VisitPin{});
  }

  /// Fully-pinned generation for targeted workloads.
  [[nodiscard]] LabeledConnection generate_pinned(int country_index, common::SimTime t,
                                                  const VisitPin& pin);

  /// Bulk generation into a sink.
  void generate(std::size_t count,
                const std::function<void(LabeledConnection&&)>& sink);

  [[nodiscard]] const World& world() const noexcept { return world_; }
  [[nodiscard]] const TrafficConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] tcp::ClientKind roll_client_kind(bool& scanner);
  [[nodiscard]] tcp::IpStackModel roll_client_stack(bool scanner);

  const World& world_;
  TrafficConfig config_;
  common::Rng rng_;
  /// Residual-censorship state: (client, domain) pair -> blocked-until time.
  std::unordered_map<std::uint64_t, common::SimTime> residual_until_;
  MethodWeight residual_method_;
};

}  // namespace tamper::world
