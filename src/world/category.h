// Content categories for domains, mirroring the taxonomy the paper reports
// against in Table 2 (the CDN's categorization vendor feed).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace tamper::world {

enum class Category : std::uint8_t {
  kAdultThemes,
  kContentServers,  ///< CDNs and sites serving content for other applications
  kTechnology,
  kBusiness,
  kEducation,
  kChat,
  kGaming,
  kLoginScreens,
  kAdvertisements,
  kHobbiesInterests,
  kNewsMedia,
  kSocialNetworks,
  kStreaming,
  kShopping,
  kGovernment,
  kHealth,
};

inline constexpr std::size_t kCategoryCount = 16;

[[nodiscard]] std::span<const Category> all_categories() noexcept;
[[nodiscard]] std::string_view name(Category c) noexcept;

/// Share of the domain universe in each category (sums to ~1).
[[nodiscard]] double universe_share(Category c) noexcept;

/// Relative request popularity multiplier: some categories (content servers,
/// advertisements) are requested far more often per domain than others
/// because they are fetched programmatically by other pages.
[[nodiscard]] double request_multiplier(Category c) noexcept;

}  // namespace tamper::world
