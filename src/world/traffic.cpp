#include "world/traffic.h"

#include <algorithm>
#include <cmath>

#include "appproto/http.h"
#include "appproto/tls.h"
#include "middlebox/catalog.h"
#include "middlebox/middlebox.h"
#include "tcp/session.h"

namespace tamper::world {

using appproto::AppProtocol;

TrafficGenerator::TrafficGenerator(const World& world, TrafficConfig config)
    : world_(world), config_(config), rng_(config.seed) {}

tcp::ClientKind TrafficGenerator::roll_client_kind(bool& scanner) {
  double roll = rng_.uniform();
  scanner = false;
  auto take = [&roll](double rate) {
    if (roll < rate) return true;
    roll -= rate;
    return false;
  };
  if (take(config_.zmap_rate)) {
    scanner = true;
    return tcp::ClientKind::kRstOnSynAck;
  }
  if (take(config_.syn_only_rate)) return tcp::ClientKind::kSynOnly;
  if (take(config_.he_rst_rate)) return tcp::ClientKind::kRstOnSynAck;
  if (take(config_.he_rst_ack_rate)) return tcp::ClientKind::kRstAckOnSynAck;
  if (take(config_.he_vanish_rate)) return tcp::ClientKind::kVanishOnSynAck;
  if (take(config_.preconnect_rate)) return tcp::ClientKind::kVanishAfterAck;
  if (take(config_.vanish_after_request_rate)) return tcp::ClientKind::kVanishAfterRequest;
  if (take(config_.abort_mid_transfer_rate)) return tcp::ClientKind::kAbortMidTransfer;
  if (take(config_.rst_after_fin_rate)) return tcp::ClientKind::kRstAfterFin;
  return tcp::ClientKind::kNormal;
}

tcp::IpStackModel TrafficGenerator::roll_client_stack(bool scanner) {
  if (scanner) return tcp::IpStackModel::zmap();
  const double roll = rng_.uniform();
  if (roll < 0.45) return tcp::IpStackModel::linux_like();
  if (roll < 0.78) return tcp::IpStackModel::windows_like();
  return tcp::IpStackModel::zero_ipid();
}

LabeledConnection TrafficGenerator::generate_one() {
  // Volume-weighted (country, time): country by traffic share, then a start
  // time accepted against the country's local diurnal load curve.
  const int country = world_.sample_country(rng_);
  common::SimTime t = 0.0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    t = rng_.uniform(config_.window_start, config_.window_end);
    if (rng_.chance(world_.volume_factor(country, t))) break;
  }
  return generate_at(country, t);
}

LabeledConnection TrafficGenerator::generate_pinned(int country_index, common::SimTime t,
                                                    const VisitPin& pin) {
  const CountrySpec& spec = world_.country(country_index);
  const auto& policy = spec.policy;

  LabeledConnection out;
  GroundTruth& truth = out.truth;
  truth.country = spec.code;
  truth.start_time = t;

  const AsInfo& as_info = pin.asn ? world_.geo().as_by_number(*pin.asn)
                                  : world_.geo().sample_as(spec.code, rng_);
  truth.asn = as_info.asn;
  truth.ipv6 = pin.ipv6 ? *pin.ipv6 : rng_.chance(spec.ipv6_share);
  truth.client_kind = roll_client_kind(truth.scanner);
  // Internet-wide scanners enumerate the IPv4 space; ZMap probes are v4.
  if (truth.scanner && !pin.ipv6) truth.ipv6 = false;
  if (pin.client_kind) {
    truth.client_kind = *pin.client_kind;
    truth.scanner = false;
  }
  truth.protocol = pin.protocol ? *pin.protocol
                                : (rng_.chance(spec.http_share) ? AppProtocol::kHttp
                                                                : AppProtocol::kTls);

  // ---- Domain selection: demand for blocked content is time-modulated ----
  std::size_t rank;
  if (pin.domain_rank) {
    rank = *pin.domain_rank;
  } else if (truth.scanner) {
    rank = world_.domains().sample_uniform(rng_);
  } else {
    double interest = world_.blocked_interest(country_index, t);
    if (config_.interest_modifier)
      interest = std::clamp(config_.interest_modifier(spec, t, interest), 0.0, 0.98);
    if (rng_.chance(interest)) {
      rank = world_.sample_blocked_domain(country_index, rng_);
    } else {
      rank = world_.domains().sample_request(rng_);
    }
  }
  const Domain& domain = world_.domains().by_rank(rank);
  truth.domain = domain.name;
  truth.domain_rank = rank;
  truth.category = domain.category;

  const net::IpAddress client_addr =
      pin.client_ip ? *pin.client_ip
                    : world_.geo().sample_client_ip(as_info, truth.ipv6, rng_);
  const std::uint64_t pair_key =
      common::mix64(client_addr.hash() ^ common::mix64(rank));

  // ---- Policy: is this connection tampered, and how? ----
  // Residual censorship (§B) takes precedence: a pair that recently
  // triggered a censor is already being held by the device and is blocked
  // earlier in the connection than the content-based path would be.
  const MethodWeight* method = nullptr;
  if (config_.residual_block_seconds > 0.0) {
    const auto it = residual_until_.find(pair_key);
    if (it != residual_until_.end() && t < it->second &&
        world_.is_blocked(country_index, rank)) {
      residual_method_ = MethodWeight{config_.residual_preset, 1.0,
                                      appproto::AppProtocol::kUnknown};
      method = &residual_method_;
    }
  }
  if (method == nullptr && world_.is_blocked(country_index, rank)) {
    double effective = policy.enforcement * world_.asn_enforcement(truth.asn);
    effective *= truth.protocol == AppProtocol::kTls ? policy.tls_bias : policy.http_bias;
    if (truth.ipv6) effective *= policy.ipv6_bias;
    if (config_.enforcement_modifier)
      effective = config_.enforcement_modifier(spec, t, effective);
    if (rng_.chance(std::min(effective, 1.0)))
      method = world_.pick_method(country_index, truth.asn, truth.protocol, rng_);
  }


  // ---- Endpoints ----
  const net::IpAddress server_ip = truth.ipv6 ? world_.domains().server_ipv6(rank)
                                              : world_.domains().server_ipv4(rank);
  const std::uint16_t server_port = truth.protocol == AppProtocol::kHttp ? 80 : 443;
  const bool keyword_path = method != nullptr && truth.protocol == AppProtocol::kHttp;

  tcp::EndpointConfig client_cfg;
  client_cfg.addr = client_addr;
  client_cfg.port = static_cast<std::uint16_t>(rng_.range(1025, 65500));
  client_cfg.is_client = true;
  client_cfg.stack = roll_client_stack(truth.scanner);
  client_cfg.isn = static_cast<std::uint32_t>(rng_.next());
  client_cfg.kind = truth.client_kind;
  client_cfg.think_time = rng_.uniform(0.005, 0.08);
  client_cfg.inter_segment_gap = rng_.uniform(0.01, 0.06);
  client_cfg.abort_after_response_bytes = static_cast<std::size_t>(rng_.range(1200, 6000));

  // Request payloads (none for probe-style clients).
  const bool sends_data = truth.client_kind == tcp::ClientKind::kNormal ||
                          truth.client_kind == tcp::ClientKind::kVanishAfterRequest ||
                          truth.client_kind == tcp::ClientKind::kAbortMidTransfer ||
                          truth.client_kind == tcp::ClientKind::kRstAfterFin;
  if (sends_data) {
    if (truth.protocol == AppProtocol::kTls) {
      appproto::ClientHelloSpec hello;
      hello.sni = domain.name;
      client_cfg.request_segments.push_back(appproto::build_client_hello(hello, rng_));
      if (rng_.chance(config_.tls_continuation_prob)) {
        // Handshake continuation + early application data: opaque records.
        std::vector<std::uint8_t> continuation(
            static_cast<std::size_t>(rng_.range(80, 520)));
        for (auto& byte : continuation) byte = static_cast<std::uint8_t>(rng_.below(256));
        continuation[0] = 0x17;  // TLS application-data record type
        client_cfg.request_segments.push_back(std::move(continuation));
      }
    } else {
      appproto::HttpRequestSpec request;
      request.host = domain.name;
      request.path = keyword_path ? "/x-blocked/page" + std::to_string(rng_.below(100))
                                  : "/page/" + std::to_string(rng_.below(1000));
      client_cfg.request_segments.push_back(appproto::build_http_request(request));
      if (rng_.chance(config_.http_second_get_prob)) {
        appproto::HttpRequestSpec second = request;
        second.path += "/more";
        client_cfg.request_segments.push_back(appproto::build_http_request(second));
      }
    }
  }

  tcp::EndpointConfig server_cfg;
  server_cfg.addr = server_ip;
  server_cfg.port = server_port;
  server_cfg.is_client = false;
  server_cfg.stack = tcp::IpStackModel::zero_ipid();
  server_cfg.isn = static_cast<std::uint32_t>(rng_.next());
  server_cfg.response_size = static_cast<std::size_t>(
      std::clamp(std::exp(rng_.normal(8.0, 1.0)), 200.0, 60000.0));
  server_cfg.service_delay = rng_.uniform(0.01, 0.08);
  // Most connections close after the exchange; the rest are keep-alives
  // that idle past the 3 s threshold and land in the unmatched
  // possibly-tampered pool (the paper's residual post-data timeouts).
  server_cfg.close_after_response = rng_.chance(0.988);

  tcp::TcpEndpoint client(client_cfg, rng_.fork(rng_.next()));
  tcp::TcpEndpoint server(server_cfg, rng_.fork(rng_.next()));
  client.set_peer(server_ip, server_port);
  server.set_peer(client_cfg.addr, client_cfg.port);

  // ---- Path & middlebox ----
  tcp::SessionConfig session;
  session.start_time = t;
  session.one_way_delay = rng_.uniform(0.02, 0.12);
  session.jitter = 0.004;
  session.loss_rate = config_.loss_rate;
  session.geometry.total_hops = static_cast<int>(rng_.range(8, 22));
  session.geometry.middlebox_hop =
      static_cast<int>(rng_.range(2, std::max(3, session.geometry.total_hops - 3)));

  std::unique_ptr<middlebox::Middlebox> box;
  if (method != nullptr) {
    middlebox::Behavior behavior = middlebox::catalog::by_name(method->preset);
    middlebox::TriggerSet triggers;
    if (behavior.trigger_point != middlebox::TriggerPoint::kClientData) {
      triggers.match_everything();  // IP-based: this flow's destination is blocked
    } else if (behavior.min_data_packets > 1) {
      // Keyword firewalls: cleartext keyword match, or opaque-payload
      // matching for devices with TLS visibility.
      if (keyword_path)
        triggers.add_http_keyword("/x-blocked/");
      else
        triggers.match_everything();
    } else {
      triggers.add_exact_domain(domain.name);
    }
    box = std::make_unique<middlebox::Middlebox>(std::move(behavior), std::move(triggers),
                                                 session.geometry, rng_.fork(rng_.next()));
    truth.tamper_armed = true;
    truth.method = method->preset;
  }

  common::Rng session_rng = rng_.fork(rng_.next());
  const tcp::SessionResult result =
      tcp::simulate_session(client, server, box.get(), session, session_rng);

  // ---- Tap: first 10 inbound packets, 1 s timestamps ----
  capture::ConnectionSample& sample = out.sample;
  sample.client_ip = client_cfg.addr;
  sample.server_ip = server_ip;
  sample.client_port = client_cfg.port;
  sample.server_port = server_port;
  sample.ip_version = truth.ipv6 ? net::IpVersion::kV6 : net::IpVersion::kV4;
  for (const auto& traced : result.server_inbound) {
    if (sample.packets.size() >= config_.max_logged_packets) break;
    sample.packets.push_back(
        capture::observe(traced.pkt, /*keep_payload=*/true, config_.timestamp_scale));
  }
  sample.observation_end_sec =
      static_cast<std::int64_t>(std::floor(result.end_time * config_.timestamp_scale));
  if (config_.keep_raw_inbound) {
    out.raw_inbound.reserve(result.server_inbound.size());
    for (const auto& traced : result.server_inbound) out.raw_inbound.push_back(traced.pkt);
  }

  truth.tampered = box != nullptr && box->triggered();
  if (truth.tampered && config_.residual_block_seconds > 0.0 &&
      rng_.chance(config_.residual_probability)) {
    residual_until_[pair_key] = t + config_.residual_block_seconds;
  }
  return out;
}

void TrafficGenerator::generate(std::size_t count,
                                const std::function<void(LabeledConnection&&)>& sink) {
  for (std::size_t i = 0; i < count; ++i) sink(generate_one());
}

}  // namespace tamper::world
