#include "world/category.h"

#include <array>

namespace tamper::world {

namespace {
struct CategoryInfo {
  Category category;
  std::string_view label;
  double universe_share;     ///< fraction of all domains
  double request_multiplier; ///< per-domain request intensity
};

constexpr std::array<CategoryInfo, kCategoryCount> kInfo = {{
    {Category::kAdultThemes, "Adult Themes", 0.08, 1.2},
    {Category::kContentServers, "Content Servers", 0.06, 4.0},
    {Category::kTechnology, "Technology", 0.12, 1.5},
    {Category::kBusiness, "Business", 0.16, 1.0},
    {Category::kEducation, "Education", 0.06, 0.8},
    {Category::kChat, "Chat", 0.03, 1.6},
    {Category::kGaming, "Gaming", 0.05, 1.1},
    {Category::kLoginScreens, "Login Screens", 0.02, 1.8},
    {Category::kAdvertisements, "Advertisements", 0.05, 3.5},
    {Category::kHobbiesInterests, "Hobbies & Interests", 0.09, 0.9},
    {Category::kNewsMedia, "News & Media", 0.07, 1.3},
    {Category::kSocialNetworks, "Social Networks", 0.03, 2.2},
    {Category::kStreaming, "Streaming", 0.04, 1.7},
    {Category::kShopping, "Shopping", 0.08, 1.0},
    {Category::kGovernment, "Government", 0.03, 0.5},
    {Category::kHealth, "Health", 0.03, 0.6},
}};

constexpr std::array<Category, kCategoryCount> kAll = {
    Category::kAdultThemes,   Category::kContentServers, Category::kTechnology,
    Category::kBusiness,      Category::kEducation,      Category::kChat,
    Category::kGaming,        Category::kLoginScreens,   Category::kAdvertisements,
    Category::kHobbiesInterests, Category::kNewsMedia,   Category::kSocialNetworks,
    Category::kStreaming,     Category::kShopping,       Category::kGovernment,
    Category::kHealth,
};
}  // namespace

std::span<const Category> all_categories() noexcept { return kAll; }

std::string_view name(Category c) noexcept {
  return kInfo[static_cast<std::size_t>(c)].label;
}

double universe_share(Category c) noexcept {
  return kInfo[static_cast<std::size_t>(c)].universe_share;
}

double request_multiplier(Category c) noexcept {
  return kInfo[static_cast<std::size_t>(c)].request_multiplier;
}

}  // namespace tamper::world
