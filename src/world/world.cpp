#include "world/world.h"

#include <algorithm>
#include <cmath>

namespace tamper::world {

namespace {
/// 0..1 curve peaking at ~03:30 local (the paper's midnight-8am window).
double night01(double local_hour) {
  return 0.5 * (1.0 + std::cos(2.0 * 3.14159265358979323846 * (local_hour - 3.5) / 24.0));
}
/// Human browsing volume: peak ~19:00 local, trough ~04:00.
double diurnal_volume(double local_hour) {
  return 0.58 + 0.42 * std::cos(2.0 * 3.14159265358979323846 * (local_hour - 19.0) / 24.0);
}
}  // namespace

World::World(const WorldConfig& config)
    : config_(config), countries_(default_countries()) {
  std::vector<std::pair<std::string, int>> asn_counts;
  asn_counts.reserve(countries_.size());
  for (const auto& c : countries_) asn_counts.emplace_back(c.code, c.asn_count);
  geo_ = std::make_unique<GeoDatabase>(asn_counts, config_.seed ^ 0x9e0);
  domains_ = std::make_unique<DomainUniverse>(config_.domains, config_.seed ^ 0xd03);

  country_weights_.reserve(countries_.size());
  for (const auto& c : countries_) country_weights_.push_back(c.traffic_weight);

  // Per-AS enforcement multipliers and dominant-AS bookkeeping.
  common::Rng rng(config_.seed ^ 0xa51);
  for (const auto& c : countries_) {
    const auto& ases = geo_->country_ases(c.code);
    if (!ases.empty()) dominant_asn_[c.code] = ases.front();
    for (const common::AsnId asn : ases) {
      const double sigma = c.policy.asn_spread;
      double mult = std::exp(rng.normal(0.0, sigma));
      // Decentralized systems include ASes that barely enforce at all.
      if (sigma > 0.35 && rng.chance(0.15)) mult *= rng.uniform(0.05, 0.35);
      asn_multiplier_[asn] = std::clamp(mult, 0.02, 1.25);
    }
  }
}

bool World::is_blocked(int country_index, std::size_t domain_rank) const {
  const auto& policy = country(country_index).policy;
  if (policy.category_block_share.empty()) return false;
  const Category cat = domains_->by_rank(domain_rank).category;
  double share = 0.0;
  for (const auto& [c, s] : policy.category_block_share) {
    if (c == cat) {
      share = s;
      break;
    }
  }
  if (share <= 0.0) return false;
  // Stable per-(country, domain) coin flip realizing the coverage share.
  const std::uint64_t h = common::mix64(
      (static_cast<std::uint64_t>(country_index) << 40) ^ domain_rank ^ config_.seed);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < share;
}

std::size_t World::sample_blocked_domain(int country_index, common::Rng& rng) const {
  // Popularity-weighted rejection sampling, with a uniform probe fallback
  // for policies whose blocked mass is tiny.
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::size_t rank = domains_->sample_request(rng);
    if (is_blocked(country_index, rank)) return rank;
  }
  const std::size_t start = domains_->sample_uniform(rng);
  for (std::size_t probe = 0; probe < domains_->size(); ++probe) {
    const std::size_t rank = (start + probe) % domains_->size();
    if (is_blocked(country_index, rank)) return rank;
  }
  return start;  // country blocks nothing: caller's enforcement check will pass on nothing
}

double World::blocked_interest(int country_index, common::SimTime t) const {
  const CountrySpec& spec = country(country_index);
  const auto& policy = spec.policy;
  const double hour = common::local_hour(t, spec.utc_offset);
  double interest = policy.extra_interest * (1.0 + policy.night_amp * night01(hour));
  if (common::is_weekend(t, spec.utc_offset)) interest *= policy.weekend_factor;
  return std::min(interest, 0.98);
}

double World::volume_factor(int country_index, common::SimTime t) const {
  const CountrySpec& spec = country(country_index);
  double factor = diurnal_volume(common::local_hour(t, spec.utc_offset));
  if (common::is_weekend(t, spec.utc_offset)) factor *= 0.9;
  return factor;
}

double World::asn_enforcement(common::AsnId asn) const {
  const auto it = asn_multiplier_.find(asn);
  return it == asn_multiplier_.end() ? 1.0 : it->second;
}

const MethodWeight* World::pick_method(int country_index, common::AsnId asn,
                                       appproto::AppProtocol protocol,
                                       common::Rng& rng) const {
  const CountrySpec& spec = country(country_index);
  const auto& policy = spec.policy;
  if (policy.methods.empty()) return nullptr;

  // Dominant-AS override (e.g. the Korean random-TTL ISP).
  if (!policy.dominant_as_preset.empty()) {
    const auto it = dominant_asn_.find(spec.code);
    if (it != dominant_asn_.end() && it->second == asn) {
      static thread_local MethodWeight dominant;
      dominant = MethodWeight{policy.dominant_as_preset, 1.0, appproto::AppProtocol::kUnknown};
      return &dominant;
    }
  }

  std::vector<double> weights;
  weights.reserve(policy.methods.size());
  for (const auto& method : policy.methods) {
    const bool applicable = method.only == appproto::AppProtocol::kUnknown ||
                            method.only == protocol;
    weights.push_back(applicable ? method.weight : 0.0);
  }
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return nullptr;
  return &policy.methods[rng.pick_weighted(weights)];
}

int World::sample_country(common::Rng& rng) const {
  return static_cast<int>(rng.pick_weighted(country_weights_));
}

}  // namespace tamper::world
