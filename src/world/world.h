// The assembled synthetic Internet: geography + domains + policies, with
// the per-connection policy queries the traffic generator needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "world/countries.h"
#include "world/domains.h"
#include "world/geo.h"

namespace tamper::world {

struct WorldConfig {
  DomainUniverse::Config domains;
  std::uint64_t seed = 0x5eed5eed5eedULL;
};

class World {
 public:
  explicit World(const WorldConfig& config = {});

  [[nodiscard]] const GeoDatabase& geo() const noexcept { return *geo_; }
  [[nodiscard]] const DomainUniverse& domains() const noexcept { return *domains_; }
  [[nodiscard]] const std::vector<CountrySpec>& countries() const noexcept {
    return countries_;
  }
  [[nodiscard]] const CountrySpec& country(int index) const {
    return countries_.at(static_cast<std::size_t>(index));
  }
  /// Scenario hook: tweak a country's policy before generating traffic
  /// (e.g. the Iran 2022 protest timeline). World keeps its own copy of the
  /// country table, so edits are local to this instance.
  [[nodiscard]] CountrySpec& mutable_country(int index) {
    return countries_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return config_.seed; }

  /// Deterministic membership of a domain in a country's blocklist,
  /// realized from the policy's per-category coverage shares.
  [[nodiscard]] bool is_blocked(int country_index, std::size_t domain_rank) const;

  /// Popularity-weighted sample from the country's blocked set.
  [[nodiscard]] std::size_t sample_blocked_domain(int country_index,
                                                  common::Rng& rng) const;

  /// Demand for blocked content at time t: policy extra_interest modulated
  /// by local night hours and weekends (drives the Fig. 6 diurnal cycle).
  [[nodiscard]] double blocked_interest(int country_index, common::SimTime t) const;

  /// Relative connection volume of a country at time t (human diurnal load).
  [[nodiscard]] double volume_factor(int country_index, common::SimTime t) const;

  /// Per-AS enforcement multiplier (lognormal around 1, sigma=asn_spread).
  [[nodiscard]] double asn_enforcement(common::AsnId asn) const;
  /// Scenario hook: pin an AS's enforcement multiplier (e.g. concentrate
  /// tampering on specific carriers, as in the Iran case study).
  void set_asn_enforcement(common::AsnId asn, double multiplier) {
    asn_multiplier_[asn] = multiplier;
  }

  /// Pick a tampering method for a connection; respects per-protocol
  /// restrictions and the dominant-AS override. Returns nullptr when the
  /// policy has no applicable method.
  [[nodiscard]] const MethodWeight* pick_method(int country_index, common::AsnId asn,
                                                appproto::AppProtocol protocol,
                                                common::Rng& rng) const;

  /// Weighted pick of a source country index.
  [[nodiscard]] int sample_country(common::Rng& rng) const;

 private:
  WorldConfig config_;
  std::vector<CountrySpec> countries_;
  std::unique_ptr<GeoDatabase> geo_;
  std::unique_ptr<DomainUniverse> domains_;
  std::vector<double> country_weights_;
  std::unordered_map<common::AsnId, double> asn_multiplier_;
  std::unordered_map<std::string, common::AsnId> dominant_asn_;  ///< country -> top AS
};

}  // namespace tamper::world
