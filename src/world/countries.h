// Country specifications and per-country tampering policies.
//
// Each entry couples observable traffic characteristics (weight, timezone,
// IPv6/HTTP shares) with a CensorshipPolicy describing what gets blocked
// (category coverage), how reliably (enforcement, per-AS heterogeneity),
// when (diurnal/weekend demand for blocked content), and with which
// middlebox behaviors (catalog preset mix, optionally per protocol).
//
// The numbers are calibrated so the *shapes* of the paper's figures emerge:
// which countries dominate which signatures (Figs. 1, 4), centralized vs
// decentralized AS homogeneity (Fig. 5), diurnal cycles (Fig. 6), protocol
// and IP-version disparities (Fig. 7), and category emphases (Table 2).
#pragma once

#include <string>
#include <vector>

#include "appproto/dpi.h"
#include "common/ids.h"
#include "world/category.h"

namespace tamper::world {

/// One entry in a country's tampering-method mix.
struct MethodWeight {
  std::string preset;  ///< middlebox::catalog name
  double weight = 1.0;
  /// Restrict to one application protocol (e.g. Turkmenistan kills TLS at
  /// the ClientHello but lets HTTP requests through before resetting).
  appproto::AppProtocol only = appproto::AppProtocol::kUnknown;  ///< kUnknown = any
};

struct CensorshipPolicy {
  /// Probability that a client request is drawn from the country's blocked
  /// set (demand for blocked content), before time-of-day modulation.
  double extra_interest = 0.0;
  /// Probability that a request for a blocked domain is actually tampered.
  double enforcement = 0.0;
  /// Lognormal sigma of per-AS enforcement multipliers: ~0 for centralized
  /// systems (CN, IR), large for decentralized ones (RU, PK, UA).
  double asn_spread = 0.15;
  /// Night-time amplification of blocked-content demand (drives Fig. 6's
  /// midnight-8am spikes in match percentage).
  double night_amp = 0.7;
  /// Multiplier on blocked-content demand during local weekends.
  double weekend_factor = 0.85;
  double tls_bias = 1.0;   ///< enforcement multiplier for TLS connections
  double http_bias = 0.40; ///< ... and for cleartext HTTP
  double ipv6_bias = 1.0;  ///< ... and for IPv6 (Fig. 7a outliers)
  std::vector<MethodWeight> methods;
  /// Fraction of each category's domains on the blocklist (Table 2's
  /// "coverage" column). Categories not listed are unblocked.
  std::vector<std::pair<Category, double>> category_block_share;
  /// If non-empty, the country's largest AS uses this preset exclusively
  /// (South Korea's random-TTL ISP, §5.1).
  std::string dominant_as_preset;
};

struct CountrySpec {
  std::string code;  ///< ISO-3166 alpha-2
  std::string display_name;
  double traffic_weight = 0.001;  ///< share of global connections
  double utc_offset = 0.0;        ///< hours from UTC (fixed; no DST)
  double ipv6_share = 0.30;
  double http_share = 0.15;       ///< cleartext HTTP fraction (rest TLS)
  int asn_count = 5;
  CensorshipPolicy policy;
};

/// The built-in world: ~55 countries covering every region in the paper's
/// figures plus enough background traffic to make "Global" meaningful.
[[nodiscard]] const std::vector<CountrySpec>& default_countries();

/// Index of a country in default_countries() by ISO code (-1 if absent).
[[nodiscard]] int country_index(const std::string& code);

/// The country table as a strong-id interner: every default country's ISO
/// code, interned in table order, so `CountryId(i)` is exactly the index
/// `country_index(code)` returns and names resolve both ways in O(log n).
[[nodiscard]] const common::CountryInventory& country_inventory();

}  // namespace tamper::world
