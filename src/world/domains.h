// The synthetic domain universe: names, categories, and request popularity.
//
// Stands in for the millions of zones served by the CDN. Popularity follows
// a Zipf law over ranks, modulated per category (content servers and ad
// networks are fetched programmatically and see disproportionate request
// volume). Names are synthesized from word lists so substring-based
// over-blocking (§5.5) has realistic material to match against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/ip_address.h"
#include "world/category.h"

namespace tamper::world {

struct Domain {
  std::string name;
  Category category = Category::kBusiness;
  /// Popularity rank; 0 is the most requested domain.
  std::size_t rank = 0;
};

class DomainUniverse {
 public:
  struct Config {
    std::size_t domain_count = 200'000;
    double zipf_exponent = 0.95;
    std::size_t cdn_ipv4_pool = 4096;  ///< distinct anycast service addresses
  };

  DomainUniverse(const Config& config, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return domains_.size(); }
  [[nodiscard]] const Domain& by_rank(std::size_t rank) const { return domains_.at(rank); }
  [[nodiscard]] std::optional<std::size_t> rank_of(std::string_view name) const;

  /// Sample a domain for one client request: Zipf popularity weighted by the
  /// category request multiplier.
  [[nodiscard]] std::size_t sample_request(common::Rng& rng) const;

  /// Uniform sample (used for scanners probing random zones).
  [[nodiscard]] std::size_t sample_uniform(common::Rng& rng) const {
    return rng.below(domains_.size());
  }

  /// Stable anycast service addresses for a domain (many domains share one,
  /// as on a real CDN — which is what makes IP blocking blunt).
  [[nodiscard]] net::IpAddress server_ipv4(std::size_t rank) const;
  [[nodiscard]] net::IpAddress server_ipv6(std::size_t rank) const;

  /// Approximate request mass of a single domain (for calibration).
  [[nodiscard]] double request_mass(std::size_t rank) const;

  [[nodiscard]] const std::vector<Domain>& all() const noexcept { return domains_; }

 private:
  Config config_;
  std::vector<Domain> domains_;
  std::unordered_map<std::string, std::size_t> rank_by_name_;
  common::ZipfSampler zipf_;
  double max_multiplier_ = 1.0;
  double total_mass_ = 1.0;
};

}  // namespace tamper::world
