#include "world/scenarios.h"

#include <cmath>

namespace tamper::world {

double protest_intensity(common::SimTime t, common::SimTime start,
                         double utc_offset_hours) {
  if (t < start) return 0.0;
  const double days = (t - start) / common::kSecondsPerDay;
  const double ramp = 1.0 - std::exp(-days / 2.0);
  const double hour = common::local_hour(t, utc_offset_hours);
  const double evening = 0.6 + 0.4 * std::exp(-std::pow(hour - 20.0, 2.0) / 18.0);
  return ramp * evening;
}

Scenario global_january_2023(std::uint64_t seed) {
  Scenario scenario;
  WorldConfig world_cfg;
  world_cfg.seed = seed;
  scenario.world = std::make_unique<World>(world_cfg);
  scenario.traffic.seed = seed ^ 0xbe7c4;
  return scenario;
}

Scenario iran_protests_2022(std::uint64_t seed) {
  Scenario scenario;
  WorldConfig world_cfg;
  world_cfg.seed = seed;
  scenario.world = std::make_unique<World>(world_cfg);
  World& world = *scenario.world;

  const int ir = country_index("IR");
  auto& policy = world.mutable_country(ir).policy;
  policy.methods = {
      {"post_ack_blackhole", 0.40, appproto::AppProtocol::kUnknown},
      {"iran_rst_ack", 0.22, appproto::AppProtocol::kUnknown},
      {"syn_rst", 0.16, appproto::AppProtocol::kUnknown},
      {"iran_rst_ack_burst", 0.08, appproto::AppProtocol::kUnknown},
      {"syn_blackhole", 0.06, appproto::AppProtocol::kUnknown},
      {"single_rst_ack_firewall", 0.08, appproto::AppProtocol::kUnknown},
  };
  // The paper attributes the surge to the mobile carriers; fixed-line ASes
  // still enforce, just less aggressively.
  for (const common::AsnId asn : world.geo().country_ases("IR"))
    world.set_asn_enforcement(asn, world.geo().as_by_number(asn).mobile ? 1.2 : 0.55);

  TrafficConfig& traffic = scenario.traffic;
  traffic.window_start = common::from_civil(2022, 9, 13);
  traffic.window_end = common::from_civil(2022, 9, 30);
  traffic.seed = seed ^ 0x12a4;
  const common::SimTime protest = common::from_civil(2022, 9, 13, 12);
  const double utc_offset = world.country(ir).utc_offset;
  traffic.interest_modifier = [protest, utc_offset](const CountrySpec& spec,
                                                    common::SimTime t, double base) {
    if (spec.code != "IR") return base;
    return base * (1.0 + 4.5 * protest_intensity(t, protest, utc_offset));
  };
  traffic.enforcement_modifier = [protest, utc_offset](const CountrySpec& spec,
                                                       common::SimTime t, double base) {
    if (spec.code != "IR") return base;
    return std::min(1.0, base * (1.0 + 0.5 * protest_intensity(t, protest, utc_offset)));
  };
  return scenario;
}

Scenario global_unscrubbed(std::uint64_t seed) {
  Scenario scenario = global_january_2023(seed);
  scenario.traffic.syn_only_rate = 0.30;  // flood residue reaching the tap
  return scenario;
}

Scenario residual_flapping(std::uint64_t seed) {
  Scenario scenario = global_january_2023(seed);
  scenario.traffic.seed = seed ^ 0x0f19;
  scenario.traffic.loss_rate = 0.012;
  scenario.traffic.residual_block_seconds = 90.0;
  scenario.traffic.residual_probability = 0.4;
  return scenario;
}

}  // namespace tamper::world
