// Anycast client->PoP routing for the fleet model.
//
// The paper's vantage is a CDN whose clients reach the nearest PoP via BGP
// anycast (§3.1): which PoP a client lands on is a function of the
// client's network location, not of time — until a PoP withdraws its
// announcement, at which point only the clients of that PoP move. We model
// this with rendezvous (highest-random-weight) hashing over the client's
// routing prefix (/16 for IPv4, /32 for IPv6):
//
//   * deterministic  — the same client prefix always reaches the same PoP
//     for a given alive-set, regardless of query order;
//   * sticky         — all connections of one client (and its /16
//     neighbours) land on one PoP, which is what makes the per-PoP
//     OverlapMatrix shards nearly disjoint;
//   * minimal motion — when a PoP dies, only the prefixes it served are
//     re-routed (the rendezvous property); everyone else stays put.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "net/ip_address.h"

namespace tamper::world {

class AnycastMap {
 public:
  /// All PoPs start alive. `seed` fixes the prefix->PoP assignment; two
  /// maps with the same (pop_count, seed) route identically.
  AnycastMap(std::uint32_t pop_count, std::uint64_t seed);

  /// Withdraw or re-announce a PoP.
  void set_alive(common::PopId pop, bool alive);
  [[nodiscard]] bool alive(common::PopId pop) const { return alive_[pop.value()]; }
  [[nodiscard]] std::uint32_t pop_count() const noexcept {
    return static_cast<std::uint32_t>(alive_.size());
  }
  [[nodiscard]] std::uint32_t alive_count() const noexcept;

  /// Highest-random-weight PoP among the alive set for this client, or
  /// nullopt when every PoP is withdrawn (the traffic is simply not
  /// observed — clients of a fully-dark anycast prefix get no answer).
  [[nodiscard]] std::optional<common::PopId> route(const net::IpAddress& client) const;

  /// The routing key: the client's /16 (v4) or /32 (v6) prefix bits,
  /// family-tagged so a v4 /16 can never collide with a v6 /32.
  [[nodiscard]] static std::uint64_t prefix_key(const net::IpAddress& client) noexcept;

 private:
  std::uint64_t seed_;
  std::vector<bool> alive_;
};

}  // namespace tamper::world
