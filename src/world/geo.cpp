#include "world/geo.h"

#include <cmath>
#include <stdexcept>

namespace tamper::world {

GeoDatabase::GeoDatabase(const std::vector<std::pair<std::string, int>>& asn_counts,
                         std::uint64_t seed) {
  common::Rng rng(seed);
  std::uint32_t next_asn = 1101;
  std::uint32_t next_v4_block = 0;  // index into sequential /16s under 11.0.0.0/8 ff.

  for (const auto& [country, count] : asn_counts) {
    auto& list = by_country_[country];
    for (int i = 0; i < count; ++i) {
      AsInfo info;
      info.asn = common::AsnId(next_asn++);
      info.country = country;
      // Zipf-ish weights: the first AS in a country carries the most traffic.
      info.weight = 1.0 / std::pow(static_cast<double>(i + 1), 1.1) *
                    rng.uniform(0.8, 1.2);
      info.mobile = (i % 3 == 1);  // roughly a third of ASes are cellular

      // IPv4: consecutive /16s starting at 11.0.0.0 (unrouted test space).
      const std::uint32_t v4_hi = ((11u << 8) + next_v4_block) & 0xffff;
      const std::uint32_t v4_base = ((11u + (next_v4_block >> 8)) << 24) |
                                    ((next_v4_block & 0xff) << 16);
      ++next_v4_block;
      info.prefix_v4 = net::IpPrefix(net::IpAddress::v4(v4_base), 16);
      (void)v4_hi;

      // IPv6: 2400:xxxx::/32 per AS.
      const std::uint64_t v6_hi =
          0x2400000000000000ULL | (static_cast<std::uint64_t>(info.asn.value()) << 16);
      info.prefix_v6 = net::IpPrefix(net::IpAddress::v6(v6_hi, 0), 64);

      by_asn_[info.asn] = ases_.size();
      by_v4_hi_[v4_base >> 16] = ases_.size();
      by_v6_hi_[v6_hi] = ases_.size();
      list.push_back(info.asn);
      ases_.push_back(std::move(info));
    }
  }
}

const AsInfo& GeoDatabase::as_by_number(common::AsnId asn) const {
  const auto it = by_asn_.find(asn);
  if (it == by_asn_.end()) throw std::out_of_range("unknown ASN");
  return ases_[it->second];
}

const std::vector<common::AsnId>& GeoDatabase::country_ases(const std::string& cc) const {
  static const std::vector<common::AsnId> kEmpty;
  const auto it = by_country_.find(cc);
  return it == by_country_.end() ? kEmpty : it->second;
}

const AsInfo& GeoDatabase::sample_as(const std::string& cc, common::Rng& rng) const {
  const auto& list = country_ases(cc);
  if (list.empty()) throw std::out_of_range("no ASNs for country " + cc);
  std::vector<double> weights;
  weights.reserve(list.size());
  for (common::AsnId asn : list) weights.push_back(as_by_number(asn).weight);
  return as_by_number(list[rng.pick_weighted(weights)]);
}

net::IpAddress GeoDatabase::sample_client_ip(const AsInfo& as_info, bool ipv6,
                                             common::Rng& rng) const {
  if (ipv6) {
    std::uint64_t hi = 0, lo = 0;
    const auto& bytes = as_info.prefix_v6.base().bytes();
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | bytes[static_cast<std::size_t>(i)];
    lo = rng.next();
    return net::IpAddress::v6(hi, lo);
  }
  const std::uint32_t base = as_info.prefix_v4.base().v4_value();
  // Avoid .0 and .255 host bytes for realism.
  const std::uint32_t host = static_cast<std::uint32_t>(rng.below(65024)) + 257;
  return net::IpAddress::v4(base | host);
}

std::optional<common::AsnId> GeoDatabase::lookup_asn(const net::IpAddress& addr) const {
  if (addr.is_v4()) {
    const auto it = by_v4_hi_.find(addr.v4_value() >> 16);
    if (it == by_v4_hi_.end()) return std::nullopt;
    return ases_[it->second].asn;
  }
  std::uint64_t hi = 0;
  const auto& bytes = addr.bytes();
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | bytes[static_cast<std::size_t>(i)];
  const auto it = by_v6_hi_.find(hi);
  if (it == by_v6_hi_.end()) return std::nullopt;
  return ases_[it->second].asn;
}

std::optional<std::string> GeoDatabase::lookup_country(const net::IpAddress& addr) const {
  const auto asn = lookup_asn(addr);
  if (!asn) return std::nullopt;
  return as_by_number(*asn).country;
}

}  // namespace tamper::world
