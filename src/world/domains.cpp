#include "world/domains.h"

#include <array>

namespace tamper::world {

namespace {

constexpr std::array<std::string_view, 48> kFirstWords = {
    "bright", "swift",  "global", "crimson", "silver", "north",  "blue",   "rapid",
    "prime",  "vivid",  "lunar",  "solar",   "cedar",  "delta",  "echo",   "falcon",
    "granite","harbor", "indigo", "jade",    "kite",   "lotus",  "maple",  "nova",
    "onyx",   "pixel",  "quartz", "river",   "stone",  "tiger",  "ultra",  "velvet",
    "willow", "xenon",  "yonder", "zephyr",  "amber",  "basalt", "coral",  "dune",
    "ember",  "frost",  "glade",  "haven",   "iris",   "juniper","krypton","lumen",
};

constexpr std::array<std::string_view, 48> kSecondWords = {
    "media",  "cloud", "cast",   "hub",    "press", "play",  "mart",  "zone",
    "line",   "spot",  "gate",   "forge",  "works", "labs",  "byte",  "net",
    "link",   "view",  "share",  "stream", "store", "board", "page",  "chat",
    "games",  "learn", "login",  "ads",    "news",  "social","video", "shop",
    "gov",    "health","tech",   "bank",   "mail",  "data",  "host",  "edge",
    "point",  "wire",  "signal", "track",  "pulse", "grid",  "scope", "path",
};

constexpr std::array<std::string_view, 8> kTlds = {".com", ".net",  ".org", ".io",
                                                   ".info", ".co",  ".site", ".app"};

}  // namespace

DomainUniverse::DomainUniverse(const Config& config, std::uint64_t seed)
    : config_(config), zipf_(config.domain_count, config.zipf_exponent) {
  common::Rng rng(seed);
  domains_.reserve(config.domain_count);
  rank_by_name_.reserve(config.domain_count);

  // Category assignment by universe share.
  std::vector<double> shares;
  shares.reserve(kCategoryCount);
  for (Category c : all_categories()) shares.push_back(universe_share(c));

  for (Category c : all_categories())
    max_multiplier_ = std::max(max_multiplier_, request_multiplier(c));

  for (std::size_t rank = 0; rank < config.domain_count; ++rank) {
    Domain d;
    d.rank = rank;
    d.category = all_categories()[rng.pick_weighted(shares)];
    // Deterministic, collision-free name: word pair + rank-derived digits.
    const std::uint64_t h = common::mix64(seed ^ (rank * 2654435761ULL));
    std::string name;
    name += kFirstWords[h % kFirstWords.size()];
    name += kSecondWords[(h >> 8) % kSecondWords.size()];
    name += std::to_string(rank);
    name += kTlds[(h >> 16) % kTlds.size()];
    d.name = std::move(name);
    rank_by_name_.emplace(d.name, rank);
    domains_.push_back(std::move(d));
  }

  total_mass_ = 0.0;
  for (std::size_t rank = 0; rank < config.domain_count; ++rank)
    total_mass_ += zipf_.pmf(rank) * request_multiplier(domains_[rank].category);
}

std::optional<std::size_t> DomainUniverse::rank_of(std::string_view name) const {
  const auto it = rank_by_name_.find(std::string(name));
  if (it == rank_by_name_.end()) return std::nullopt;
  return it->second;
}

std::size_t DomainUniverse::sample_request(common::Rng& rng) const {
  // Zipf proposal, accept by category multiplier (bounded rejection).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t rank = zipf_.sample(rng);
    const double accept =
        request_multiplier(domains_[rank].category) / max_multiplier_;
    if (rng.chance(accept)) return rank;
  }
  return zipf_.sample(rng);
}

net::IpAddress DomainUniverse::server_ipv4(std::size_t rank) const {
  // CDN anycast pool 198.18.0.0/15 (benchmarking range: never a real host).
  const std::uint32_t slot =
      static_cast<std::uint32_t>(common::mix64(rank * 11400714819323198485ULL) %
                                 config_.cdn_ipv4_pool);
  return net::IpAddress::v4((198u << 24) | (18u << 16) | (slot & 0x1ffff));
}

net::IpAddress DomainUniverse::server_ipv6(std::size_t rank) const {
  const std::uint64_t slot =
      common::mix64(rank * 11400714819323198485ULL) % config_.cdn_ipv4_pool;
  // 2001:db8:cd:<slot>::1 — documentation prefix for the simulated CDN.
  return net::IpAddress::v6(0x20010db800cd0000ULL | (slot & 0xffff), 1);
}

double DomainUniverse::request_mass(std::size_t rank) const {
  if (rank >= domains_.size() || total_mass_ <= 0.0) return 0.0;
  return zipf_.pmf(rank) * request_multiplier(domains_[rank].category) / total_mass_;
}

}  // namespace tamper::world
