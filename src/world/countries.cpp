#include "world/countries.h"

#include <unordered_map>

namespace tamper::world {

namespace {

using appproto::AppProtocol;
using Cat = Category;

MethodWeight mw(std::string preset, double weight,
                AppProtocol only = AppProtocol::kUnknown) {
  return MethodWeight{std::move(preset), weight, only};
}

/// Baseline for countries without notable censorship: sparse corporate /
/// copyright firewalls acting on cleartext keywords and a handful of
/// category-filtered domains. Produces the small but non-zero match rates
/// the paper reports for the US, GB, DE, etc.
CensorshipPolicy light_policy(double interest = 0.012, double spread = 0.6) {
  CensorshipPolicy p;
  p.extra_interest = interest;
  p.enforcement = 0.80;
  p.asn_spread = spread;  // corporate blocking varies a lot across ASes
  p.night_amp = 0.45;
  p.weekend_factor = 0.75;  // enterprise networks idle on weekends
  p.methods = {
      mw("keyword_firewall_rst_ack", 0.40),
      mw("keyword_firewall_rst", 0.30),
      mw("single_rst_firewall", 0.20),
      mw("single_rst_ack_firewall", 0.10),
  };
  p.category_block_share = {
      {Cat::kContentServers, 0.006}, {Cat::kTechnology, 0.004},
      {Cat::kBusiness, 0.003},       {Cat::kAdultThemes, 0.030},
      {Cat::kStreaming, 0.010},
  };
  return p;
}

std::vector<CountrySpec> build_countries() {
  std::vector<CountrySpec> v;
  auto add = [&](CountrySpec spec) { v.push_back(std::move(spec)); };

  // ---- Heavily tampering regions (Fig. 4 left side) ----

  {
    // Turkmenistan: blanket bans on CDN ranges; TLS killed at the dropped
    // ClientHello (SYN;ACK → RST), HTTP requests observed then reset.
    CensorshipPolicy p;
    p.extra_interest = 0.10;
    p.enforcement = 0.95;
    p.asn_spread = 0.05;
    p.night_amp = 0.4;
    p.tls_bias = 1.0;
    p.http_bias = 1.0;
    p.methods = {
        mw("post_ack_rst", 0.72, AppProtocol::kTls),
        mw("post_ack_rst_burst", 0.06, AppProtocol::kTls),
        mw("single_rst_firewall", 0.16, AppProtocol::kHttp),
        mw("syn_rst", 0.06),
    };
    // Blanket: nearly every category is substantially blocked.
    p.category_block_share = {
        {Cat::kAdultThemes, 0.95},   {Cat::kContentServers, 0.90},
        {Cat::kTechnology, 0.88},    {Cat::kBusiness, 0.85},
        {Cat::kEducation, 0.85},     {Cat::kChat, 0.95},
        {Cat::kGaming, 0.85},        {Cat::kLoginScreens, 0.85},
        {Cat::kAdvertisements, 0.90},{Cat::kHobbiesInterests, 0.85},
        {Cat::kNewsMedia, 0.95},     {Cat::kSocialNetworks, 0.97},
        {Cat::kStreaming, 0.92},     {Cat::kShopping, 0.80},
        {Cat::kGovernment, 0.60},    {Cat::kHealth, 0.75},
    };
    add({"TM", "Turkmenistan", 0.0018, 5.0, 0.02, 0.28, 3, p});
  }
  {
    // Peru: ISP-level filtering dominated by advertisement domains.
    CensorshipPolicy p;
    p.extra_interest = 0.46;
    p.enforcement = 0.92;
    p.asn_spread = 0.25;
    p.methods = {
        mw("single_rst_ack_firewall", 0.40),
        mw("keyword_firewall_rst", 0.28),
        mw("single_rst_firewall", 0.32),
    };
    p.category_block_share = {
        {Cat::kAdvertisements, 0.615}, {Cat::kBusiness, 0.059},
        {Cat::kTechnology, 0.085},     {Cat::kAdultThemes, 0.10},
    };
    add({"PE", "Peru", 0.008, -5.0, 0.30, 0.18, 6, p});
  }
  {
    // Uzbekistan: Iran-style post-handshake RST+ACK injection dominates.
    CensorshipPolicy p;
    p.extra_interest = 0.26;
    p.enforcement = 0.92;
    p.asn_spread = 0.10;
    p.methods = {
        mw("iran_rst_ack", 0.70),
        mw("post_ack_blackhole", 0.12),
        mw("iran_rst_ack_burst", 0.08),
        mw("single_rst_ack_firewall", 0.10),
    };
    p.category_block_share = {
        {Cat::kSocialNetworks, 0.60}, {Cat::kNewsMedia, 0.40},
        {Cat::kAdultThemes, 0.50},    {Cat::kChat, 0.45},
        {Cat::kStreaming, 0.25},      {Cat::kContentServers, 0.08},
    };
    add({"UZ", "Uzbekistan", 0.004, 5.0, 0.08, 0.30, 5, p});
  }
  {
    // Cuba: mostly silent drops (state telecom monopoly).
    CensorshipPolicy p;
    p.extra_interest = 0.26;
    p.enforcement = 0.90;
    p.asn_spread = 0.05;
    p.methods = {
        mw("post_ack_blackhole", 0.38),
        mw("syn_blackhole", 0.28),
        mw("post_ack_rst", 0.14),
        mw("post_ack_rst_burst", 0.10),
        mw("psh_blackhole", 0.10),
    };
    p.category_block_share = {
        {Cat::kNewsMedia, 0.55},   {Cat::kSocialNetworks, 0.40},
        {Cat::kAdultThemes, 0.40}, {Cat::kChat, 0.35},
        {Cat::kTechnology, 0.10},
    };
    add({"CU", "Cuba", 0.0018, -5.0, 0.04, 0.40, 2, p});
  }
  {
    // Saudi Arabia.
    CensorshipPolicy p;
    p.extra_interest = 0.24;
    p.enforcement = 0.92;
    p.asn_spread = 0.12;
    p.methods = {
        mw("post_ack_rst", 0.22),
        mw("post_ack_rst_burst", 0.08),
        mw("single_rst_ack_firewall", 0.28),
        mw("psh_blackhole", 0.20),
        mw("syn_rst_ack", 0.22),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.85},  {Cat::kGaming, 0.12},
        {Cat::kStreaming, 0.18},    {Cat::kNewsMedia, 0.15},
        {Cat::kSocialNetworks, 0.10},
    };
    add({"SA", "Saudi Arabia", 0.008, 3.0, 0.35, 0.12, 7, p});
  }
  {
    // Kazakhstan: post-handshake RST+ACK (16.5% of connections per paper).
    CensorshipPolicy p;
    p.extra_interest = 0.22;
    p.enforcement = 0.90;
    p.asn_spread = 0.18;
    p.methods = {
        mw("iran_rst_ack", 0.62),
        mw("post_ack_blackhole", 0.10),
        mw("single_rst_firewall", 0.16),
        mw("keyword_firewall_rst", 0.12),
    };
    p.category_block_share = {
        {Cat::kNewsMedia, 0.35},    {Cat::kSocialNetworks, 0.30},
        {Cat::kAdultThemes, 0.45},  {Cat::kChat, 0.25},
        {Cat::kHobbiesInterests, 0.10},
    };
    add({"KZ", "Kazakhstan", 0.005, 6.0, 0.18, 0.22, 6, p});
  }
  {
    // Russia: decentralized TSPU deployment — many methods, high AS spread.
    CensorshipPolicy p;
    p.extra_interest = 0.20;
    p.enforcement = 0.85;
    p.asn_spread = 0.55;
    p.methods = {
        mw("psh_blackhole", 0.19),
        mw("single_rst_firewall", 0.18),
        mw("keyword_firewall_rst", 0.13),
        mw("single_rst_ack_firewall", 0.13),
        mw("repeated_rst_same_ack", 0.08),
        mw("post_ack_rst", 0.09),
        mw("syn_rst", 0.09),
        mw("keyword_firewall_rst_ack", 0.11),
    };
    p.category_block_share = {
        {Cat::kHobbiesInterests, 0.281}, {Cat::kBusiness, 0.029},
        {Cat::kAdvertisements, 0.074},   {Cat::kNewsMedia, 0.30},
        {Cat::kSocialNetworks, 0.25},    {Cat::kAdultThemes, 0.15},
    };
    add({"RU", "Russia", 0.030, 3.0, 0.30, 0.20, 18, p});
  }
  {
    // Pakistan: decentralized, mixed drops and resets.
    CensorshipPolicy p;
    p.extra_interest = 0.20;
    p.enforcement = 0.82;
    p.asn_spread = 0.50;
    p.methods = {
        mw("single_rst_firewall", 0.28),
        mw("psh_blackhole", 0.28),
        mw("syn_blackhole", 0.18),
        mw("keyword_firewall_rst", 0.16),
        mw("post_ack_blackhole", 0.10),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.70},  {Cat::kSocialNetworks, 0.20},
        {Cat::kNewsMedia, 0.18},    {Cat::kStreaming, 0.15},
        {Cat::kChat, 0.12},
    };
    add({"PK", "Pakistan", 0.014, 5.0, 0.12, 0.30, 10, p});
  }
  {
    // Nicaragua.
    CensorshipPolicy p;
    p.extra_interest = 0.19;
    p.enforcement = 0.85;
    p.asn_spread = 0.30;
    p.methods = {
        mw("single_rst_ack_firewall", 0.40),
        mw("keyword_firewall_rst_ack", 0.30),
        mw("post_ack_rst", 0.30),
    };
    p.category_block_share = {
        {Cat::kNewsMedia, 0.30}, {Cat::kAdvertisements, 0.25},
        {Cat::kAdultThemes, 0.25}, {Cat::kBusiness, 0.02},
    };
    add({"NI", "Nicaragua", 0.0012, -6.0, 0.08, 0.30, 3, p});
  }
  {
    // Ukraine: commercial firewalls prominent — PSH;Data → RST+ACK (§5.1).
    CensorshipPolicy p;
    p.extra_interest = 0.18;
    p.enforcement = 0.85;
    p.asn_spread = 0.50;
    p.methods = {
        mw("keyword_firewall_rst_ack", 0.50),
        mw("keyword_firewall_rst", 0.16),
        mw("single_rst_firewall", 0.18),
        mw("psh_blackhole", 0.16),
    };
    p.category_block_share = {
        {Cat::kHobbiesInterests, 0.18}, {Cat::kSocialNetworks, 0.22},
        {Cat::kNewsMedia, 0.20},        {Cat::kAdvertisements, 0.10},
        {Cat::kBusiness, 0.015},
    };
    add({"UA", "Ukraine", 0.010, 2.0, 0.22, 0.22, 12, p});
  }
  {
    // Bangladesh.
    CensorshipPolicy p;
    p.extra_interest = 0.18;
    p.enforcement = 0.82;
    p.asn_spread = 0.40;
    p.methods = {
        mw("single_rst_firewall", 0.35),
        mw("psh_blackhole", 0.25),
        mw("post_ack_blackhole", 0.20),
        mw("keyword_firewall_rst", 0.20),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.60}, {Cat::kGaming, 0.15},
        {Cat::kSocialNetworks, 0.12}, {Cat::kStreaming, 0.10},
    };
    add({"BD", "Bangladesh", 0.012, 6.0, 0.10, 0.35, 8, p});
  }
  {
    // Mexico: not a classic censor; heterogeneous ISP-level blocking.
    CensorshipPolicy p;
    p.extra_interest = 0.17;
    p.enforcement = 0.85;
    p.asn_spread = 0.55;
    p.methods = {
        mw("single_rst_firewall", 0.36),
        mw("keyword_firewall_rst_ack", 0.28),
        mw("psh_blackhole", 0.22),
        mw("single_rst_ack_firewall", 0.14),
    };
    p.category_block_share = {
        {Cat::kAdvertisements, 0.126}, {Cat::kTechnology, 0.034},
        {Cat::kBusiness, 0.029},       {Cat::kAdultThemes, 0.08},
    };
    add({"MX", "Mexico", 0.022, -6.0, 0.38, 0.15, 12, p});
  }
  {
    // Iran: protocol filtering — drop the ClientHello (timeout) or inject
    // RST+ACK after dropping; two mobile carriers dominate (§5.6).
    CensorshipPolicy p;
    p.extra_interest = 0.115;
    p.enforcement = 0.90;
    p.asn_spread = 0.08;
    p.night_amp = 0.9;
    p.weekend_factor = 0.70;  // paper: notably lower on (local) weekends
    p.methods = {
        mw("post_ack_blackhole", 0.38),
        mw("iran_rst_ack", 0.24),
        mw("iran_rst_ack_burst", 0.10),
        mw("syn_rst", 0.10),
        mw("syn_blackhole", 0.06),
        mw("single_rst_ack_firewall", 0.12),
    };
    p.category_block_share = {
        {Cat::kContentServers, 0.302}, {Cat::kTechnology, 0.022},
        {Cat::kBusiness, 0.014},       {Cat::kSocialNetworks, 0.65},
        {Cat::kAdultThemes, 0.55},     {Cat::kNewsMedia, 0.40},
        {Cat::kStreaming, 0.35},       {Cat::kChat, 0.45},
    };
    add({"IR", "Iran", 0.012, 3.5, 0.12, 0.28, 8, p});
  }

  // ---- Moderate tampering ----
  auto moderate = [&](std::string code, std::string name_, double weight, double utc,
                      double v6, double http, int asns, double interest,
                      std::vector<MethodWeight> methods,
                      std::vector<std::pair<Cat, double>> cats, double spread = 0.30) {
    CensorshipPolicy p;
    p.extra_interest = interest;
    p.enforcement = 0.85;
    p.asn_spread = spread;
    p.methods = std::move(methods);
    p.category_block_share = std::move(cats);
    add({std::move(code), std::move(name_), weight, utc, v6, http, asns, std::move(p)});
  };

  moderate("OM", "Oman", 0.002, 4.0, 0.15, 0.15, 3, 0.16,
           {mw("post_ack_rst", 0.4), mw("single_rst_ack_firewall", 0.35),
            mw("psh_blackhole", 0.25)},
           {{Cat::kAdultThemes, 0.75}, {Cat::kStreaming, 0.15}, {Cat::kChat, 0.20}});
  moderate("DJ", "Djibouti", 0.0008, 3.0, 0.05, 0.35, 2, 0.16,
           {mw("syn_blackhole", 0.4), mw("post_ack_blackhole", 0.35),
            mw("single_rst_firewall", 0.25)},
           {{Cat::kNewsMedia, 0.35}, {Cat::kSocialNetworks, 0.25},
            {Cat::kAdultThemes, 0.30}});
  moderate("AZ", "Azerbaijan", 0.003, 4.0, 0.08, 0.25, 4, 0.15,
           {mw("iran_rst_ack", 0.35), mw("post_ack_blackhole", 0.30),
            mw("single_rst_firewall", 0.35)},
           {{Cat::kNewsMedia, 0.40}, {Cat::kSocialNetworks, 0.20},
            {Cat::kAdultThemes, 0.25}});
  moderate("AE", "United Arab Emirates", 0.006, 4.0, 0.30, 0.10, 5, 0.15,
           {mw("single_rst_ack_firewall", 0.40), mw("post_ack_rst", 0.30),
            mw("keyword_firewall_rst_ack", 0.30)},
           {{Cat::kAdultThemes, 0.80}, {Cat::kChat, 0.35}, {Cat::kGaming, 0.10},
            {Cat::kStreaming, 0.12}});
  moderate("SD", "Sudan", 0.002, 2.0, 0.04, 0.40, 3, 0.15,
           {mw("syn_blackhole", 0.35), mw("post_ack_blackhole", 0.35),
            mw("single_rst_firewall", 0.30)},
           {{Cat::kNewsMedia, 0.30}, {Cat::kSocialNetworks, 0.30},
            {Cat::kAdultThemes, 0.40}});
  {
    // China: the GFW — centralized, distinctive multi-RST bursts, and the
    // zero-ACK pattern shared only with KR (§4.3).
    CensorshipPolicy p;
    p.extra_interest = 0.085;
    p.enforcement = 0.96;
    p.asn_spread = 0.06;
    p.night_amp = 0.8;
    p.tls_bias = 1.0;
    p.http_bias = 0.45;  // Fig. 7b: CN ~15% TLS vs ~7% HTTP
    p.methods = {
        mw("gfw_mixed_burst", 0.26),
        mw("gfw_double_rst_ack", 0.22),
        mw("zero_ack_injector", 0.14),
        mw("single_rst_firewall", 0.12),
        mw("psh_blackhole", 0.08),
        mw("gfw_syn_burst", 0.08),
        mw("syn_blackhole", 0.06),
        mw("keyword_firewall_rst", 0.04, AppProtocol::kHttp),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.510},   {Cat::kContentServers, 0.031},
        {Cat::kEducation, 0.213},     {Cat::kSocialNetworks, 0.55},
        {Cat::kNewsMedia, 0.35},      {Cat::kChat, 0.30},
        {Cat::kStreaming, 0.30},      {Cat::kTechnology, 0.06},
        {Cat::kLoginScreens, 0.10},
    };
    add({"CN", "China", 0.055, 8.0, 0.30, 0.25, 16, p});
  }
  moderate("BY", "Belarus", 0.004, 3.0, 0.12, 0.25, 4, 0.13,
           {mw("single_rst_firewall", 0.35), mw("psh_blackhole", 0.30),
            mw("post_ack_rst", 0.35)},
           {{Cat::kNewsMedia, 0.45}, {Cat::kSocialNetworks, 0.25},
            {Cat::kHobbiesInterests, 0.10}});
  moderate("RW", "Rwanda", 0.001, 2.0, 0.05, 0.35, 2, 0.13,
           {mw("syn_blackhole", 0.4), mw("single_rst_firewall", 0.6)},
           {{Cat::kNewsMedia, 0.30}, {Cat::kAdultThemes, 0.25}});
  moderate("EG", "Egypt", 0.012, 2.0, 0.10, 0.30, 8, 0.13,
           {mw("psh_blackhole", 0.36), mw("syn_blackhole", 0.22),
            mw("repeated_rst_same_ack", 0.12), mw("single_rst_firewall", 0.30)},
           {{Cat::kNewsMedia, 0.40}, {Cat::kAdultThemes, 0.45},
            {Cat::kSocialNetworks, 0.12}}, 0.20);
  moderate("YE", "Yemen", 0.002, 3.0, 0.03, 0.45, 2, 0.13,
           {mw("post_ack_blackhole", 0.45), mw("single_rst_firewall", 0.55)},
           {{Cat::kAdultThemes, 0.55}, {Cat::kNewsMedia, 0.30}});
  moderate("AF", "Afghanistan", 0.002, 4.5, 0.03, 0.45, 3, 0.12,
           {mw("syn_blackhole", 0.40), mw("psh_blackhole", 0.35),
            mw("single_rst_firewall", 0.25)},
           {{Cat::kAdultThemes, 0.60}, {Cat::kSocialNetworks, 0.20},
            {Cat::kStreaming, 0.15}});
  moderate("LA", "Laos", 0.001, 7.0, 0.05, 0.40, 2, 0.12,
           {mw("post_ack_blackhole", 0.5), mw("single_rst_firewall", 0.5)},
           {{Cat::kNewsMedia, 0.25}, {Cat::kAdultThemes, 0.35}});
  moderate("MM", "Myanmar", 0.003, 6.5, 0.06, 0.40, 4, 0.12,
           {mw("syn_blackhole", 0.35), mw("post_ack_blackhole", 0.30),
            mw("single_rst_firewall", 0.35)},
           {{Cat::kNewsMedia, 0.45}, {Cat::kSocialNetworks, 0.40},
            {Cat::kChat, 0.20}});
  moderate("IQ", "Iraq", 0.004, 3.0, 0.05, 0.35, 5, 0.12,
           {mw("psh_blackhole", 0.40), mw("single_rst_firewall", 0.35),
            mw("keyword_firewall_rst", 0.25)},
           {{Cat::kAdultThemes, 0.50}, {Cat::kNewsMedia, 0.20},
            {Cat::kChat, 0.15}}, 0.40);
  moderate("KW", "Kuwait", 0.002, 3.0, 0.20, 0.15, 3, 0.11,
           {mw("single_rst_ack_firewall", 0.45), mw("post_ack_rst", 0.30),
            mw("keyword_firewall_rst_ack", 0.25)},
           {{Cat::kAdultThemes, 0.75}, {Cat::kStreaming, 0.12},
            {Cat::kGaming, 0.08}});

  // ---- Lighter tampering (right side of Fig. 4) ----
  moderate("TR", "Turkey", 0.016, 3.0, 0.25, 0.20, 10, 0.10,
           {mw("single_rst_firewall", 0.30), mw("psh_blackhole", 0.22),
            mw("keyword_firewall_rst", 0.22), mw("repeated_rst_same_ack", 0.12),
            mw("post_ack_rst", 0.14)},
           {{Cat::kNewsMedia, 0.30}, {Cat::kSocialNetworks, 0.18},
            {Cat::kAdultThemes, 0.35}, {Cat::kHobbiesInterests, 0.06}}, 0.40);
  moderate("BH", "Bahrain", 0.001, 3.0, 0.12, 0.15, 2, 0.10,
           {mw("single_rst_ack_firewall", 0.5), mw("post_ack_rst", 0.5)},
           {{Cat::kNewsMedia, 0.35}, {Cat::kAdultThemes, 0.60}});
  moderate("ET", "Ethiopia", 0.003, 3.0, 0.03, 0.40, 2, 0.10,
           {mw("syn_blackhole", 0.40), mw("post_ack_blackhole", 0.35),
            mw("single_rst_firewall", 0.25)},
           {{Cat::kNewsMedia, 0.30}, {Cat::kSocialNetworks, 0.25}});
  {
    // India: large, decentralized; adult-content orders dominate (Table 2).
    CensorshipPolicy p;
    p.extra_interest = 0.075;
    p.enforcement = 0.80;
    p.asn_spread = 0.45;
    p.methods = {
        mw("single_rst_firewall", 0.32),
        mw("psh_blackhole", 0.24),
        mw("syn_blackhole", 0.12),
        mw("keyword_firewall_rst", 0.16),
        mw("single_rst_ack_firewall", 0.16),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.183}, {Cat::kChat, 0.034},
        {Cat::kContentServers, 0.024}, {Cat::kSocialNetworks, 0.04},
        {Cat::kGaming, 0.05},
    };
    add({"IN", "India", 0.095, 5.5, 0.55, 0.30, 20, p});
  }
  moderate("HN", "Honduras", 0.001, -6.0, 0.05, 0.30, 2, 0.09,
           {mw("single_rst_firewall", 0.6), mw("keyword_firewall_rst", 0.4)},
           {{Cat::kAdvertisements, 0.20}, {Cat::kAdultThemes, 0.15}});
  moderate("ER", "Eritrea", 0.0005, 3.0, 0.02, 0.50, 1, 0.09,
           {mw("syn_blackhole", 0.5), mw("post_ack_blackhole", 0.5)},
           {{Cat::kNewsMedia, 0.35}, {Cat::kSocialNetworks, 0.25}});
  moderate("PS", "Palestine", 0.001, 2.0, 0.05, 0.30, 2, 0.09,
           {mw("single_rst_firewall", 0.55), mw("psh_blackhole", 0.45)},
           {{Cat::kNewsMedia, 0.25}, {Cat::kAdultThemes, 0.30}});
  moderate("MY", "Malaysia", 0.008, 8.0, 0.35, 0.15, 6, 0.08,
           {mw("psh_blackhole", 0.35), mw("single_rst_firewall", 0.35),
            mw("keyword_firewall_rst_ack", 0.30)},
           {{Cat::kAdultThemes, 0.45}, {Cat::kGaming, 0.10},
            {Cat::kStreaming, 0.10}}, 0.35);
  moderate("TH", "Thailand", 0.012, 7.0, 0.35, 0.20, 8, 0.08,
           {mw("single_rst_firewall", 0.40), mw("psh_blackhole", 0.30),
            mw("keyword_firewall_rst", 0.30)},
           {{Cat::kAdultThemes, 0.40}, {Cat::kNewsMedia, 0.15},
            {Cat::kGaming, 0.08}}, 0.35);
  {
    // South Korea: adult-content blocking; one large ISP injects RST bursts
    // with randomized TTLs (§4.3, §5.1).
    CensorshipPolicy p;
    p.extra_interest = 0.075;
    p.enforcement = 0.90;
    p.asn_spread = 0.30;
    p.dominant_as_preset = "korea_random_ttl";
    p.methods = {
        mw("ack_guessing_injector", 0.18),
        mw("zero_ack_injector", 0.12),
        mw("single_rst_firewall", 0.30),
        mw("psh_blackhole", 0.15),
        mw("keyword_firewall_rst_ack", 0.25),
    };
    p.category_block_share = {
        {Cat::kAdultThemes, 0.376},  {Cat::kGaming, 0.015},
        {Cat::kLoginScreens, 0.305}, {Cat::kStreaming, 0.05},
    };
    add({"KR", "South Korea", 0.018, 9.0, 0.40, 0.10, 8, p});
  }
  moderate("VN", "Vietnam", 0.014, 7.0, 0.40, 0.25, 8, 0.07,
           {mw("psh_blackhole", 0.35), mw("single_rst_firewall", 0.35),
            mw("keyword_firewall_rst", 0.30)},
           {{Cat::kNewsMedia, 0.25}, {Cat::kSocialNetworks, 0.12},
            {Cat::kAdultThemes, 0.20}}, 0.40);
  moderate("VE", "Venezuela", 0.004, -4.0, 0.10, 0.25, 4, 0.07,
           {mw("syn_blackhole", 0.30), mw("post_ack_blackhole", 0.30),
            mw("single_rst_firewall", 0.40)},
           {{Cat::kNewsMedia, 0.40}, {Cat::kSocialNetworks, 0.15}}, 0.40);
  moderate("SY", "Syria", 0.001, 2.0, 0.03, 0.40, 2, 0.06,
           {mw("post_ack_blackhole", 0.45), mw("syn_blackhole", 0.30),
            mw("single_rst_firewall", 0.25)},
           {{Cat::kNewsMedia, 0.40}, {Cat::kSocialNetworks, 0.30},
            {Cat::kChat, 0.25}});
  moderate("KP", "North Korea", 0.0002, 9.0, 0.01, 0.60, 1, 0.04,
           {mw("syn_blackhole", 0.7), mw("post_ack_blackhole", 0.3)},
           {{Cat::kNewsMedia, 0.50}, {Cat::kSocialNetworks, 0.50}});

  // ---- Fig. 7 comparison countries ----
  {
    CountrySpec lk{"LK", "Sri Lanka", 0.005, 5.5, 0.30, 0.30, 4,
                   light_policy(0.18, 0.25)};
    // Paper: >40% tampering on IPv4 but <25% on IPv6.
    lk.policy.ipv6_bias = 0.45;
    lk.policy.methods = {mw("post_ack_blackhole", 0.45), mw("iran_rst_ack", 0.30),
                         mw("single_rst_firewall", 0.25)};
    lk.policy.enforcement = 0.88;
    lk.policy.category_block_share = {{Cat::kAdultThemes, 0.50},
                                      {Cat::kSocialNetworks, 0.30},
                                      {Cat::kNewsMedia, 0.25}};
    add(std::move(lk));
  }
  {
    CountrySpec ke{"KE", "Kenya", 0.006, 3.0, 0.25, 0.30, 4, light_policy(0.10, 0.3)};
    // Paper: IPv6 tampering roughly double the ~25% IPv4 rate.
    ke.policy.ipv6_bias = 2.0;
    ke.policy.enforcement = 0.85;
    ke.policy.methods = {mw("single_rst_firewall", 0.5),
                         mw("keyword_firewall_rst", 0.5)};
    ke.policy.category_block_share = {{Cat::kAdvertisements, 0.30},
                                      {Cat::kAdultThemes, 0.25}};
    add(std::move(ke));
  }

  // ---- Large, lightly-tampered countries (baseline traffic) ----
  add({"US", "United States", 0.14, -6.0, 0.48, 0.08, 20, light_policy(0.016)});
  add({"DE", "Germany", 0.035, 1.0, 0.55, 0.08, 12, light_policy(0.013)});
  add({"GB", "United Kingdom", 0.035, 0.0, 0.40, 0.08, 12, light_policy(0.015)});
  add({"FR", "France", 0.025, 1.0, 0.50, 0.09, 10, light_policy(0.010)});
  add({"BR", "Brazil", 0.045, -3.0, 0.42, 0.18, 15, light_policy(0.012)});
  add({"JP", "Japan", 0.035, 9.0, 0.45, 0.10, 12, light_policy(0.006)});
  add({"CA", "Canada", 0.015, -5.0, 0.40, 0.08, 8, light_policy(0.009)});
  add({"AU", "Australia", 0.012, 10.0, 0.35, 0.08, 7, light_policy(0.010)});
  add({"IT", "Italy", 0.018, 1.0, 0.30, 0.10, 9, light_policy(0.011)});
  add({"ES", "Spain", 0.016, 1.0, 0.35, 0.10, 8, light_policy(0.011)});
  add({"NL", "Netherlands", 0.012, 1.0, 0.45, 0.08, 7, light_policy(0.008)});
  add({"PL", "Poland", 0.010, 1.0, 0.30, 0.12, 7, light_policy(0.009)});
  add({"ID", "Indonesia", 0.028, 7.0, 0.20, 0.25, 12, light_policy(0.030, 0.4)});
  add({"NG", "Nigeria", 0.010, 1.0, 0.08, 0.30, 6, light_policy(0.020, 0.4)});
  add({"SG", "Singapore", 0.007, 8.0, 0.40, 0.08, 5, light_policy(0.012)});
  add({"AR", "Argentina", 0.012, -3.0, 0.35, 0.15, 8, light_policy(0.010)});
  add({"CO", "Colombia", 0.010, -5.0, 0.30, 0.18, 6, light_policy(0.025, 0.4)});
  add({"CL", "Chile", 0.007, -4.0, 0.30, 0.15, 5, light_policy(0.010)});
  add({"EC", "Ecuador", 0.005, -5.0, 0.20, 0.20, 4, light_policy(0.022, 0.4)});
  add({"GT", "Guatemala", 0.004, -6.0, 0.10, 0.25, 3, light_policy(0.020, 0.4)});
  add({"PY", "Paraguay", 0.003, -4.0, 0.15, 0.20, 3, light_policy(0.018, 0.4)});
  add({"PH", "Philippines", 0.012, 8.0, 0.25, 0.22, 8, light_policy(0.015)});
  add({"ZA", "South Africa", 0.008, 2.0, 0.15, 0.18, 6, light_policy(0.010)});
  add({"SE", "Sweden", 0.008, 1.0, 0.40, 0.08, 5, light_policy(0.008)});
  add({"TW", "Taiwan", 0.008, 8.0, 0.40, 0.10, 6, light_policy(0.007)});
  add({"HK", "Hong Kong", 0.007, 8.0, 0.45, 0.10, 5, light_policy(0.008)});
  add({"IL", "Israel", 0.006, 2.0, 0.30, 0.10, 5, light_policy(0.009)});
  add({"MA", "Morocco", 0.005, 1.0, 0.10, 0.25, 4, light_policy(0.015)});
  add({"DZ", "Algeria", 0.005, 1.0, 0.08, 0.28, 4, light_policy(0.018)});

  return v;
}

}  // namespace

const std::vector<CountrySpec>& default_countries() {
  static const std::vector<CountrySpec> kCountries = build_countries();
  return kCountries;
}

const common::CountryInventory& country_inventory() {
  static const common::CountryInventory kInventory = [] {
    common::CountryInventory inv;
    for (const CountrySpec& c : default_countries()) inv.intern(c.code);
    return inv;
  }();
  return kInventory;
}

int country_index(const std::string& code) {
  static const std::unordered_map<std::string, int> kIndex = [] {
    std::unordered_map<std::string, int> m;
    const auto& countries = default_countries();
    for (int i = 0; i < static_cast<int>(countries.size()); ++i)
      m.emplace(countries[static_cast<std::size_t>(i)].code, i);
    return m;
  }();
  const auto it = kIndex.find(code);
  return it == kIndex.end() ? -1 : it->second;
}

}  // namespace tamper::world
