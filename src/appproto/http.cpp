#include "appproto/http.h"

#include <algorithm>
#include <cctype>

namespace tamper::appproto {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<std::uint8_t> build_http_request(const HttpRequestSpec& spec) {
  std::string head;
  head.reserve(256);
  head += spec.method;
  head += ' ';
  head += spec.path;
  head += " HTTP/1.1\r\nHost: ";
  head += spec.host;
  head += "\r\nUser-Agent: ";
  head += spec.user_agent;
  head += "\r\nAccept: */*\r\nConnection: keep-alive\r\n";
  for (const auto& [name, value] : spec.extra_headers) {
    head += name;
    head += ": ";
    head += value;
    head += "\r\n";
  }
  head += "\r\n";
  return {head.begin(), head.end()};
}

bool looks_like_http_request(std::span<const std::uint8_t> payload) noexcept {
  static constexpr std::string_view kMethods[] = {"GET ",     "POST ",   "HEAD ",
                                                  "PUT ",     "DELETE ", "OPTIONS ",
                                                  "CONNECT ", "PATCH ",  "TRACE "};
  const std::string_view text{reinterpret_cast<const char*>(payload.data()),
                              std::min<std::size_t>(payload.size(), 8)};
  return std::any_of(std::begin(kMethods), std::end(kMethods),
                     [&](std::string_view m) { return text.starts_with(m); });
}

std::optional<ParsedHttpRequest> parse_http_request(std::span<const std::uint8_t> payload) {
  if (!looks_like_http_request(payload)) return std::nullopt;
  const std::string_view text{reinterpret_cast<const char*>(payload.data()),
                              payload.size()};
  const std::size_t line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;

  const std::string_view request_line = text.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;

  ParsedHttpRequest out;
  out.method = std::string(request_line.substr(0, sp1));
  out.path = std::string(trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
  out.version = std::string(request_line.substr(sp2 + 1));

  std::size_t pos = line_end + 2;
  while (pos < text.size()) {
    const std::size_t eol = text.find("\r\n", pos);
    const std::string_view line =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    if (line.empty()) break;  // end of head
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      const std::string name = to_lower(trim(line.substr(0, colon)));
      const std::string value{trim(line.substr(colon + 1))};
      out.headers[name] = value;
      if (name == "host") out.host = value;
      if (name == "user-agent") out.user_agent = value;
    }
    if (eol == std::string_view::npos) break;  // truncated mid-head: keep what we have
    pos = eol + 2;
  }
  return out;
}

std::optional<std::string> extract_host(std::span<const std::uint8_t> payload) {
  const auto parsed = parse_http_request(payload);
  if (!parsed || !parsed->host) return std::nullopt;
  return parsed->host;
}

}  // namespace tamper::appproto
