#include "appproto/tls.h"

#include <algorithm>

namespace tamper::appproto {

namespace {

constexpr std::uint8_t kContentTypeHandshake = 22;
constexpr std::uint8_t kHandshakeClientHello = 1;
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSupportedVersions = 43;
constexpr std::uint16_t kExtSupportedGroups = 10;
constexpr std::uint16_t kExtSignatureAlgorithms = 13;
constexpr std::uint16_t kExtKeyShare = 51;

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }
void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put24(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// Simple big-endian cursor with bounds checking; `ok` latches failures.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u24() noexcept {
    if (!require(3)) return 0;
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!require(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) noexcept {
    if (require(n)) pos_ += n;
  }

 private:
  bool require(std::size_t n) noexcept {
    if (data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::uint8_t> build_client_hello(const ClientHelloSpec& spec,
                                             common::Rng& rng) {
  std::vector<std::uint8_t> body;
  body.reserve(512);
  put16(body, 0x0303);  // legacy_version TLS 1.2
  for (int i = 0; i < 32; ++i) put8(body, static_cast<std::uint8_t>(rng.below(256)));
  put8(body, static_cast<std::uint8_t>(spec.session_id_len));
  for (std::size_t i = 0; i < spec.session_id_len; ++i)
    put8(body, static_cast<std::uint8_t>(rng.below(256)));

  // A realistic modern cipher suite offering.
  static constexpr std::uint16_t kSuites[] = {0x1301, 0x1302, 0x1303, 0xc02b,
                                              0xc02f, 0xc02c, 0xc030, 0x00ff};
  put16(body, static_cast<std::uint16_t>(sizeof(kSuites) / sizeof(kSuites[0]) * 2));
  for (std::uint16_t suite : kSuites) put16(body, suite);
  put8(body, 1);  // compression methods length
  put8(body, 0);  // null

  std::vector<std::uint8_t> exts;
  if (!spec.sni.empty()) {
    std::vector<std::uint8_t> sni;
    put16(sni, static_cast<std::uint16_t>(spec.sni.size() + 3));  // server_name_list
    put8(sni, 0);                                                 // host_name
    put16(sni, static_cast<std::uint16_t>(spec.sni.size()));
    put_bytes(sni, {reinterpret_cast<const std::uint8_t*>(spec.sni.data()), spec.sni.size()});
    put16(exts, kExtServerName);
    put16(exts, static_cast<std::uint16_t>(sni.size()));
    put_bytes(exts, sni);
  }
  if (!spec.alpn.empty()) {
    std::vector<std::uint8_t> alpn_list;
    for (const auto& proto : spec.alpn) {
      put8(alpn_list, static_cast<std::uint8_t>(proto.size()));
      put_bytes(alpn_list,
                {reinterpret_cast<const std::uint8_t*>(proto.data()), proto.size()});
    }
    put16(exts, kExtAlpn);
    put16(exts, static_cast<std::uint16_t>(alpn_list.size() + 2));
    put16(exts, static_cast<std::uint16_t>(alpn_list.size()));
    put_bytes(exts, alpn_list);
  }
  {
    // supported_groups: x25519, secp256r1
    put16(exts, kExtSupportedGroups);
    put16(exts, 6);
    put16(exts, 4);
    put16(exts, 0x001d);
    put16(exts, 0x0017);
    // signature_algorithms: a small plausible set
    put16(exts, kExtSignatureAlgorithms);
    put16(exts, 8);
    put16(exts, 6);
    put16(exts, 0x0403);
    put16(exts, 0x0804);
    put16(exts, 0x0401);
  }
  if (spec.offer_tls13) {
    put16(exts, kExtSupportedVersions);
    put16(exts, 5);
    put8(exts, 4);        // list length
    put16(exts, 0x0304);  // TLS 1.3
    put16(exts, 0x0303);  // TLS 1.2
    // key_share: x25519 with a random 32-byte public key
    put16(exts, kExtKeyShare);
    put16(exts, 38);
    put16(exts, 36);
    put16(exts, 0x001d);
    put16(exts, 32);
    for (int i = 0; i < 32; ++i) put8(exts, static_cast<std::uint8_t>(rng.below(256)));
  }
  put16(body, static_cast<std::uint16_t>(exts.size()));
  put_bytes(body, exts);

  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 9);
  put8(out, kContentTypeHandshake);
  put16(out, 0x0301);  // record legacy version (as emitted in the wild)
  put16(out, static_cast<std::uint16_t>(body.size() + 4));
  put8(out, kHandshakeClientHello);
  put24(out, static_cast<std::uint32_t>(body.size()));
  put_bytes(out, body);
  return out;
}

bool looks_like_client_hello(std::span<const std::uint8_t> payload) noexcept {
  return payload.size() >= 6 && payload[0] == kContentTypeHandshake &&
         payload[1] == 0x03 && payload[2] <= 0x04 && payload[5] == kHandshakeClientHello;
}

std::optional<ParsedClientHello> parse_client_hello(std::span<const std::uint8_t> payload,
                                                    bool allow_truncated) {
  if (!looks_like_client_hello(payload)) return std::nullopt;
  Reader rec(payload);
  rec.skip(3);  // content type + record version
  const std::uint16_t record_len = rec.u16();
  if (!rec.ok()) return std::nullopt;
  const bool truncated = rec.remaining() < record_len;
  if (truncated && !allow_truncated) return std::nullopt;

  Reader hs(payload.subspan(5, std::min<std::size_t>(record_len, payload.size() - 5)));
  if (hs.u8() != kHandshakeClientHello) return std::nullopt;
  hs.u24();  // handshake length (may exceed what we captured)

  ParsedClientHello out;
  out.legacy_version = hs.u16();
  hs.skip(32);  // random
  const std::uint8_t session_id_len = hs.u8();
  hs.skip(session_id_len);
  const std::uint16_t suites_len = hs.u16();
  if (!hs.ok() || suites_len % 2 != 0) return std::nullopt;
  out.cipher_suite_count = suites_len / 2;
  hs.skip(suites_len);
  const std::uint8_t compression_len = hs.u8();
  hs.skip(compression_len);
  if (!hs.ok()) return std::nullopt;
  if (hs.remaining() < 2) return allow_truncated ? std::optional(out) : std::nullopt;
  const std::uint16_t ext_total = hs.u16();
  (void)ext_total;

  while (hs.ok() && hs.remaining() >= 4) {
    const std::uint16_t ext_type = hs.u16();
    const std::uint16_t ext_len = hs.u16();
    if (hs.remaining() < ext_len) {
      if (allow_truncated) break;
      return std::nullopt;
    }
    Reader ext(hs.bytes(ext_len));
    switch (ext_type) {
      case kExtServerName: {
        const std::uint16_t list_len = ext.u16();
        (void)list_len;
        const std::uint8_t name_type = ext.u8();
        const std::uint16_t name_len = ext.u16();
        const auto name = ext.bytes(name_len);
        if (ext.ok() && name_type == 0)
          out.sni = std::string(name.begin(), name.end());
        break;
      }
      case kExtAlpn: {
        const std::uint16_t list_len = ext.u16();
        (void)list_len;
        while (ext.ok() && ext.remaining() > 0) {
          const std::uint8_t proto_len = ext.u8();
          const auto proto = ext.bytes(proto_len);
          if (ext.ok()) out.alpn.emplace_back(proto.begin(), proto.end());
        }
        break;
      }
      case kExtSupportedVersions: {
        const std::uint8_t list_len = ext.u8();
        for (int i = 0; ext.ok() && i + 1 < list_len; i += 2) {
          if (ext.u16() == 0x0304) out.offers_tls13 = true;
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::optional<std::string> extract_sni(std::span<const std::uint8_t> payload) {
  const auto parsed = parse_client_hello(payload);
  if (!parsed || !parsed->sni) return std::nullopt;
  return parsed->sni;
}

}  // namespace tamper::appproto
