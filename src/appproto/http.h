// HTTP/1.1 request construction and parsing.
//
// Cleartext HTTP exposes the Host header and the request line to DPI
// middleboxes; keyword censorship matches on the GET path or headers.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tamper::appproto {

struct HttpRequestSpec {
  std::string method = "GET";
  std::string path = "/";
  std::string host;
  std::string user_agent = "Mozilla/5.0 (X11; Linux x86_64) tamper-sim/1.0";
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Serialize a request head (no body).
[[nodiscard]] std::vector<std::uint8_t> build_http_request(const HttpRequestSpec& spec);

struct ParsedHttpRequest {
  std::string method;
  std::string path;
  std::string version;
  std::optional<std::string> host;
  std::optional<std::string> user_agent;
  std::map<std::string, std::string> headers;  ///< lower-cased field names
};

/// True when the payload starts with a plausible HTTP/1.x request line.
[[nodiscard]] bool looks_like_http_request(std::span<const std::uint8_t> payload) noexcept;

/// Parse the head; tolerates truncation after a complete Host header.
[[nodiscard]] std::optional<ParsedHttpRequest> parse_http_request(
    std::span<const std::uint8_t> payload);

/// Convenience for DPI: the Host header, if present.
[[nodiscard]] std::optional<std::string> extract_host(std::span<const std::uint8_t> payload);

}  // namespace tamper::appproto
