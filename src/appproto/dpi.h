// Unified deep-packet-inspection view of a client's first data bytes:
// classifies the application protocol and extracts the domain the way a
// middlebox (or the passive analysis pipeline) would.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "appproto/http.h"
#include "appproto/tls.h"

namespace tamper::appproto {

enum class AppProtocol : std::uint8_t { kUnknown, kTls, kHttp };

struct DpiResult {
  AppProtocol protocol = AppProtocol::kUnknown;
  std::optional<std::string> domain;  ///< SNI host or HTTP Host header
  std::optional<std::string> http_path;
  std::optional<std::string> http_user_agent;
};

[[nodiscard]] inline DpiResult inspect_payload(std::span<const std::uint8_t> payload) {
  DpiResult out;
  if (payload.empty()) return out;
  if (looks_like_client_hello(payload)) {
    out.protocol = AppProtocol::kTls;
    out.domain = extract_sni(payload);
    return out;
  }
  if (looks_like_http_request(payload)) {
    out.protocol = AppProtocol::kHttp;
    if (const auto req = parse_http_request(payload)) {
      out.domain = req->host;
      out.http_path = req->path;
      out.http_user_agent = req->user_agent;
    }
    return out;
  }
  return out;
}

[[nodiscard]] inline const char* to_string(AppProtocol p) noexcept {
  switch (p) {
    case AppProtocol::kTls:
      return "TLS";
    case AppProtocol::kHttp:
      return "HTTP";
    case AppProtocol::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace tamper::appproto
