// TLS ClientHello construction and parsing.
//
// Tampering middleboxes key on the cleartext SNI in the ClientHello (§2.1);
// the analysis side likewise recovers the requested domain from the first
// data packet of sampled connections (§3.4). We implement enough of RFC 8446
// to build and parse a realistic ClientHello: record layer, handshake
// header, cipher suites, and the server_name / ALPN / supported_versions
// extensions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace tamper::appproto {

struct ClientHelloSpec {
  std::string sni;                  ///< empty = omit the server_name extension
  std::vector<std::string> alpn = {"h2", "http/1.1"};
  bool offer_tls13 = true;
  std::size_t session_id_len = 32;  ///< 32 in TLS 1.3 compatibility mode
};

/// Serialize a ClientHello (record layer + handshake message).
[[nodiscard]] std::vector<std::uint8_t> build_client_hello(const ClientHelloSpec& spec,
                                                           common::Rng& rng);

struct ParsedClientHello {
  std::uint16_t legacy_version = 0;
  std::optional<std::string> sni;
  std::vector<std::string> alpn;
  bool offers_tls13 = false;
  std::size_t cipher_suite_count = 0;
};

/// True when the payload begins with a TLS handshake record containing a
/// ClientHello (the cheap DPI pre-check).
[[nodiscard]] bool looks_like_client_hello(std::span<const std::uint8_t> payload) noexcept;

/// Full parse; nullopt when the payload is not a well-formed ClientHello.
/// Tolerates a ClientHello truncated at a packet boundary if the SNI
/// extension is complete (`allow_truncated`).
[[nodiscard]] std::optional<ParsedClientHello> parse_client_hello(
    std::span<const std::uint8_t> payload, bool allow_truncated = true);

/// Convenience for DPI: extract just the SNI, if any.
[[nodiscard]] std::optional<std::string> extract_sni(std::span<const std::uint8_t> payload);

}  // namespace tamper::appproto
