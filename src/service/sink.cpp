#include "service/sink.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>

namespace tamper::service {

namespace fs = std::filesystem;

bool FileSink::deliver(const std::string& payload) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << payload;
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

ReportEmitter::ReportEmitter(Sink& sink, RetryPolicy policy, std::string spool_dir,
                             std::uint64_t seed, std::function<void(double)> sleep_fn)
    : sink_(sink),
      policy_(policy),
      spool_dir_(std::move(spool_dir)),
      rng_(common::mix64(seed ^ 0x5e11ba0cf0f5ULL)),
      sleep_fn_(std::move(sleep_fn)) {
  if (!sleep_fn_) {
    sleep_fn_ = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
  }
  if (!spool_dir_.empty()) {
    std::error_code ec;
    fs::create_directories(spool_dir_, ec);
    // Resume the sequence past any reports spooled by a previous process so
    // replay order stays oldest-first across restarts.
    common::MutexLock lock(mu_);
    for (const std::string& name : spool_files()) {
      const auto digits = name.find_last_of('-');
      if (digits != std::string::npos)
        spool_seq_ = std::max<std::uint64_t>(
            spool_seq_, std::strtoull(name.c_str() + digits + 1, nullptr, 10) + 1);
    }
  }
}

bool ReportEmitter::emit(const std::string& payload) {
  {
    common::MutexLock lock(mu_);
    ++stats_.reports;
  }
  if (try_deliver(payload)) {
    {
      common::MutexLock lock(mu_);
      ++stats_.delivered;
    }
    replay_spool();
    return true;
  }
  spool(payload);
  return false;
}

bool ReportEmitter::try_deliver(const std::string& payload) {
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        common::MutexLock lock(mu_);
        ++stats_.retries;
      }
      sleep_fn_(backoff_delay(attempt));  // backoff happens outside the lock
    }
    {
      common::MutexLock lock(mu_);
      ++stats_.attempts;
    }
    try {
      if (sink_.deliver(payload)) return true;
    } catch (...) {
      // A throwing sink is just a failing sink.
    }
  }
  return false;
}

double ReportEmitter::backoff_delay(int attempt) {
  double delay = policy_.initial_backoff_s;
  for (int i = 1; i < attempt; ++i) delay *= policy_.backoff_multiplier;
  delay = std::min(delay, policy_.max_backoff_s);
  const double jitter = policy_.jitter_fraction * delay;
  return std::max(0.0, delay + rng_.uniform(-jitter, jitter));
}

void ReportEmitter::spool(const std::string& payload) {
  if (spool_dir_.empty()) {
    common::MutexLock lock(mu_);
    ++stats_.lost;
    return;
  }
  std::uint64_t seq = 0;
  {
    common::MutexLock lock(mu_);
    seq = spool_seq_++;
  }
  char name[32];
  std::snprintf(name, sizeof name, "report-%012llu",
                static_cast<unsigned long long>(seq));
  const fs::path path = fs::path(spool_dir_) / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  {
    common::MutexLock lock(mu_);
    if (!out || !(out << payload).flush()) {
      ++stats_.lost;
      return;
    }
    ++stats_.spooled;
  }
  // Enforce the spool cap by evicting oldest-first: under sustained sink
  // failure the freshest aggregates are the ones worth replaying, and disk
  // usage must stay bounded (the overload contract). Each eviction is
  // counted — data loss by policy, never silent.
  if (policy_.max_spool_depth > 0) {
    std::vector<std::string> names = spool_files();
    std::error_code ec;
    for (std::size_t i = 0; names.size() - i > policy_.max_spool_depth; ++i) {
      fs::remove(fs::path(spool_dir_) / names[i], ec);
      common::MutexLock lock(mu_);
      ++stats_.spool_dropped;
    }
  }
}

void ReportEmitter::replay_spool() {
  if (spool_dir_.empty()) return;
  for (const std::string& name : spool_files()) {
    const fs::path path = fs::path(spool_dir_) / name;
    std::error_code ec;
    std::ifstream in(path, std::ios::binary);
    if (!fs::is_regular_file(path, ec) || !in) {
      // An unreadable spool entry is data loss: a previous pass accepted
      // the report into the spool and this one cannot deliver it. Count it
      // and quarantine it (rename bad-*) so one poisoned entry cannot stall
      // every future replay pass at the same spot.
      {
        common::MutexLock lock(mu_);
        ++stats_.spool_replay_failures;
      }
      fs::rename(path, fs::path(spool_dir_) / ("bad-" + name), ec);
      if (ec) fs::remove_all(path, ec);
      continue;
    }
    std::string payload((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    // One direct attempt per spooled report — the spool is already the
    // fallback, so a failure just leaves the file for the next replay.
    {
      common::MutexLock lock(mu_);
      ++stats_.attempts;
    }
    bool ok = false;
    try {
      ok = sink_.deliver(payload);
    } catch (...) {
    }
    if (!ok) return;
    {
      common::MutexLock lock(mu_);
      ++stats_.delivered;
      ++stats_.spool_replayed;
    }
    fs::remove(path, ec);
  }
}

std::size_t ReportEmitter::spool_depth() const { return spool_files().size(); }

std::vector<std::string> ReportEmitter::spool_files() const {
  std::vector<std::string> names;
  if (spool_dir_.empty()) return names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(spool_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("report-", 0) == 0) names.push_back(name);
  }
  // Replay order is the embedded sequence number, not the lexical name.
  // Zero-padding keeps the two aligned only until the width overflows or a
  // foreign spool feeds unpadded names; oldest-first is a correctness
  // property, so sort numerically (name as tie-break for malformed digits).
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              const auto seq = [](const std::string& n) {
                return std::strtoull(n.c_str() + n.find_last_of('-') + 1, nullptr, 10);
              };
              const unsigned long long sa = seq(a), sb = seq(b);
              return sa != sb ? sa < sb : a < b;
            });
  return names;
}

}  // namespace tamper::service
