#include "service/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "common/binio.h"

namespace tamper::service {

namespace {

constexpr std::size_t kEnvelopeOverhead = 8 + 4 + 8 + 8;  // magic + version + size + checksum

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// fsync a path's parent directory so the rename itself is durable.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const analysis::Pipeline& pipeline,
                                            const CheckpointMeta& meta) {
  common::BinWriter payload;
  payload.u64(meta.samples_ingested);
  payload.u64(meta.sequence);
  pipeline.snapshot(payload);

  common::BinWriter out;
  for (char c : kCheckpointMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kCheckpointVersion);
  out.u64(payload.bytes().size());
  std::vector<std::uint8_t> image = out.take();
  image.insert(image.end(), payload.bytes().begin(), payload.bytes().end());

  common::BinWriter checksum;
  checksum.u64(common::fnv1a_bytes(payload.bytes().data(), payload.bytes().size()));
  image.insert(image.end(), checksum.bytes().begin(), checksum.bytes().end());
  return image;
}

LoadResult decode_checkpoint(const std::vector<std::uint8_t>& bytes,
                             analysis::Pipeline& pipeline) {
  LoadResult result;
  if (bytes.size() < kEnvelopeOverhead) {
    result.error = "checkpoint too short to hold an envelope (" +
                   std::to_string(bytes.size()) + " bytes)";
    return result;
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0) {
    result.error = "bad checkpoint magic";
    return result;
  }
  common::BinReader header(bytes.data() + sizeof kCheckpointMagic,
                           bytes.size() - sizeof kCheckpointMagic);
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  try {
    version = header.u32();
    payload_size = header.u64();
  } catch (const common::BinUnderrun&) {
    result.error = "truncated checkpoint header";
    return result;
  }
  if (version != kCheckpointVersion) {
    result.error = "unsupported checkpoint version " + std::to_string(version) +
                   " (this build reads version " + std::to_string(kCheckpointVersion) + ")";
    return result;
  }
  if (payload_size != bytes.size() - kEnvelopeOverhead) {
    result.error = "checkpoint payload size mismatch (declared " +
                   std::to_string(payload_size) + ", actual " +
                   std::to_string(bytes.size() - kEnvelopeOverhead) + ")";
    return result;
  }
  const std::uint8_t* payload = bytes.data() + (kEnvelopeOverhead - 8);
  common::BinReader tail(bytes.data() + bytes.size() - 8, 8);
  const std::uint64_t declared_checksum = tail.u64();
  const std::uint64_t actual_checksum =
      common::fnv1a_bytes(payload, static_cast<std::size_t>(payload_size));
  if (declared_checksum != actual_checksum) {
    result.error = "checkpoint checksum mismatch (corrupt or truncated payload)";
    return result;
  }
  try {
    common::BinReader reader(payload, static_cast<std::size_t>(payload_size));
    result.meta.samples_ingested = reader.u64();
    result.meta.sequence = reader.u64();
    pipeline.restore(reader);
    if (!reader.exhausted()) {
      result.error = "checkpoint has " + std::to_string(reader.remaining()) +
                     " trailing payload bytes";
      return result;
    }
  } catch (const std::exception& e) {
    result.error = std::string("checkpoint payload rejected: ") + e.what();
    return result;
  }
  result.ok = true;
  return result;
}

std::string save_checkpoint(const std::string& path, const analysis::Pipeline& pipeline,
                            const CheckpointMeta& meta) {
  const std::vector<std::uint8_t> image = encode_checkpoint(pipeline, meta);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return errno_string("open checkpoint temp file");
  const bool wrote = std::fwrite(image.data(), 1, image.size(), f) == image.size() &&
                     std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return errno_string("write checkpoint temp file");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return errno_string("rename checkpoint into place");
  }
  fsync_parent_dir(path);
  return {};
}

LoadResult load_checkpoint(const std::string& path, analysis::Pipeline& pipeline) {
  LoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = "no checkpoint at " + path;
    return result;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    result.error = "read error on " + path;
    return result;
  }
  return decode_checkpoint(bytes, pipeline);
}

}  // namespace tamper::service
