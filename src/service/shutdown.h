// Two-strike signal handling for draining services.
//
// The first SIGINT/SIGTERM is a drain request: the handler records the
// signal and returns, and the command loop polls pending() to stop offering
// load, drain the queue, checkpoint and emit a final report. A SECOND
// SIGINT/SIGTERM while that drain is still running means the operator wants
// out NOW: the handler calls std::_Exit(128 + sig) — no destructors, no
// flushes, just the conventional fatal-signal exit code. Both paths are
// async-signal-safe: the handler touches only a volatile sig_atomic_t and
// _Exit (POSIX async-signal-safe).
//
// All state is process-global (signal handlers cannot carry instance
// state); install() is idempotent and re-arms a fresh first strike.
#pragma once

#include <csignal>
#include <cstdlib>

namespace tamper::service {

namespace shutdown_detail {
inline volatile std::sig_atomic_t g_signal = 0;
}  // namespace shutdown_detail

extern "C" inline void tamper_shutdown_on_signal(int sig) {
  if (shutdown_detail::g_signal != 0) std::_Exit(128 + sig);  // second strike
  shutdown_detail::g_signal = sig;
}

class ShutdownGuard {
 public:
  /// Arm SIGINT/SIGTERM and reset the first-strike state.
  static void install() {
    shutdown_detail::g_signal = 0;
    std::signal(SIGINT, &tamper_shutdown_on_signal);
    std::signal(SIGTERM, &tamper_shutdown_on_signal);
  }

  /// The signal that requested the drain, or 0 if none yet.
  [[nodiscard]] static int pending() {
    return static_cast<int>(shutdown_detail::g_signal);
  }
  [[nodiscard]] static bool requested() { return pending() != 0; }

  /// Shell convention for a signal-terminated process.
  [[nodiscard]] static int exit_code() { return 128 + pending(); }
};

}  // namespace tamper::service
