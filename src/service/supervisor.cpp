#include "service/supervisor.h"

#include <sstream>

#include "analysis/report.h"

namespace tamper::service {

namespace {

/// Thrown into the worker loop when the watchdog wants a stalled stage
/// recycled; distinguished from a genuine crash so the crash counter stays
/// honest.
struct StageRestartRequested {};

[[nodiscard]] bool sample_is_embryonic(const capture::ConnectionSample& s) noexcept {
  return s.packets.size() <= 1;  // single bare SYN: the shape floods leave
}

}  // namespace

SupervisedService::SupervisedService(const world::World& world, ServiceConfig config,
                                     ReportEmitter* emitter)
    : world_(world),
      config_(std::move(config)),
      emitter_(emitter),
      pipeline_(std::make_unique<analysis::Pipeline>(world)),
      queue_(config_.queue_capacity, config_.queue_policy, sample_is_embryonic),
      anomaly_watchdog_(config_.anomaly) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  clock_ = config_.clock != nullptr ? config_.clock : &obs::monotonic_clock();
  pipeline_->set_obs(metrics_, config_.tracer, clock_);
  pipeline_->set_trends_config(config_.trends);
  anomaly_watchdog_.set_obs(metrics_, config_.logger);
  if (config_.overload.enabled) {
    control::OverloadConfig oc = config_.overload;
    if (oc.clock == nullptr) oc.clock = clock_;  // inherit the service seam
    overload_ = std::make_unique<control::OverloadController>(oc);
    overload_->set_obs(metrics_);
  }
  register_metrics();
}

SupervisedService::~SupervisedService() {
  if (running_.load()) kill();
  metrics_->remove_collector(collector_);
  // Detach the pipeline's and controller's collectors now: members destruct
  // in reverse declaration order, so owned_metrics_ dies before pipeline_
  // (and before overload_) and neither destructor may touch the registry
  // then.
  pipeline_->set_obs(nullptr);
  if (overload_ != nullptr) overload_->set_obs(nullptr);
}

void SupervisedService::register_metrics() {
  obs::Registry& m = *metrics_;
  ingested_c_ = &m.counter(
      "tamper_ingest_samples_total",
      "Samples ingested by the worker (includes checkpoint-restored samples)");
  checkpoints_written_c_ =
      &m.counter("tamper_checkpoint_writes_total", "Checkpoints written successfully");
  checkpoint_failures_c_ = &m.counter(
      "tamper_checkpoint_failures_total",
      "Checkpoint writes that failed (fault hook or I/O error)");
  reports_emitted_c_ =
      &m.counter("tamper_reports_emitted_total", "Radar reports handed to the emitter");
  worker_crashes_c_ = &m.counter("tamper_worker_crashes_total",
                                 "Worker stage crashes caught by the supervisor");
  worker_restarts_c_ = &m.counter("tamper_worker_restarts_total",
                                  "Worker stage restarts (crash or stall recycle)");
  stalls_detected_c_ =
      &m.counter("tamper_worker_stalls_total", "Worker stalls detected by the watchdog");
  checkpoint_save_seconds_ = &m.histogram(
      "tamper_checkpoint_save_seconds", "Checkpoint save duration",
      obs::duration_buckets());
  checkpoint_restore_seconds_ = &m.histogram(
      "tamper_checkpoint_restore_seconds", "Checkpoint restore duration at start()",
      obs::duration_buckets());

  // Gauges and mirrors whose truth lives in the queue / emitter / heartbeat:
  // refreshed by this collector at every snapshot.
  obs::Gauge* heartbeat_age =
      &m.gauge("tamper_supervisor_heartbeat_age_seconds",
               "Seconds since the worker last made progress");
  obs::Gauge* queue_depth = &m.gauge("tamper_queue_depth", "Samples currently queued");
  obs::Gauge* queue_capacity =
      &m.gauge("tamper_queue_capacity", "Bounded ingest queue capacity");
  obs::Counter* q_pushed =
      &m.counter("tamper_queue_pushed_total", "Samples accepted into the queue");
  obs::Counter* q_popped =
      &m.counter("tamper_queue_popped_total", "Samples popped by the worker");
  obs::Counter* q_waits = &m.counter("tamper_queue_push_waits_total",
                                     "Producer pushes that had to wait (kBlock)");
  auto& shed_family = m.counter_family(
      "tamper_queue_shed_total", "Samples shed under backpressure", {"reason"});
  obs::Counter* shed_embryonic = &shed_family.with({"embryonic"});
  obs::Counter* shed_forced = &shed_family.with({"forced"});

  obs::Counter* e_reports = nullptr;
  obs::Counter* e_delivered = nullptr;
  obs::Counter* e_attempts = nullptr;
  obs::Counter* e_retries = nullptr;
  obs::Counter* e_spooled = nullptr;
  obs::Counter* e_replayed = nullptr;
  obs::Counter* e_lost = nullptr;
  obs::Gauge* e_spool_depth = nullptr;
  if (emitter_ != nullptr) {
    e_reports = &m.counter("tamper_emitter_reports_total", "Reports submitted to emit()");
    e_delivered = &m.counter("tamper_emitter_delivered_total",
                             "Reports the sink accepted (including spool replays)");
    e_attempts =
        &m.counter("tamper_emitter_attempts_total", "Individual sink deliver() calls");
    e_retries = &m.counter("tamper_emitter_retries_total",
                           "Delivery attempts beyond the first, per report");
    e_spooled = &m.counter("tamper_emitter_spooled_total", "Reports parked on disk");
    e_replayed = &m.counter("tamper_emitter_spool_replayed_total",
                            "Spooled reports later delivered");
    e_lost = &m.counter("tamper_emitter_lost_total",
                        "Reports lost (spool write itself failed)");
    e_spool_depth =
        &m.gauge("tamper_emitter_spool_depth", "Spooled reports awaiting replay");
  }
  obs::Counter* e_replay_failures =
      emitter_ != nullptr
          ? &m.counter("tamper_sink_spool_replay_failures_total",
                       "Spool entries unreadable at replay (quarantined; data loss)")
          : nullptr;
  obs::Counter* e_spool_dropped =
      emitter_ != nullptr
          ? &m.counter("tamper_emitter_spool_dropped_total",
                       "Oldest spool entries evicted to honor the spool cap")
          : nullptr;

  collector_ = m.add_collector([=, this] {
    const common::BoundedQueueStats qs = queue_.stats();
    q_pushed->increment_to(qs.pushed);
    q_popped->increment_to(qs.popped);
    q_waits->increment_to(qs.push_waits);
    shed_embryonic->increment_to(qs.shed_low_value);
    shed_forced->increment_to(qs.shed_other);
    queue_depth->set(static_cast<double>(queue_.size()));
    queue_capacity->set(static_cast<double>(config_.queue_capacity));
    const std::uint64_t beat_ns = last_beat_ns_.load();
    const std::uint64_t now_ns = clock_->now_ns();
    heartbeat_age->set(beat_ns == 0 || now_ns < beat_ns
                           ? 0.0
                           : static_cast<double>(now_ns - beat_ns) * 1e-9);
    if (emitter_ != nullptr) {
      const ReportEmitter::Stats es = emitter_->stats();
      e_reports->increment_to(es.reports);
      e_delivered->increment_to(es.delivered);
      e_attempts->increment_to(es.attempts);
      e_retries->increment_to(es.retries);
      e_spooled->increment_to(es.spooled);
      e_replayed->increment_to(es.spool_replayed);
      e_lost->increment_to(es.lost);
      e_replay_failures->increment_to(es.spool_replay_failures);
      e_spool_dropped->increment_to(es.spool_dropped);
      e_spool_depth->set(static_cast<double>(emitter_->spool_depth()));
    }
  });
}

bool SupervisedService::start(Resume resume) {
  if (running_.load()) {
    common::MutexLock lock(lifecycle_mu_);
    error_ = "service already running";
    return false;
  }
  // Counter bases: a registry can outlive or be shared across services, so
  // every RunSummary figure (and the checkpoint/report cadence) is a delta
  // against the values at start. Captured before the restore below so the
  // restored samples count into this run, as they always have.
  base_.ingested = ingested_c_->value();
  base_.checkpoints_written = checkpoints_written_c_->value();
  base_.checkpoint_failures = checkpoint_failures_c_->value();
  base_.reports_emitted = reports_emitted_c_->value();
  base_.worker_crashes = worker_crashes_c_->value();
  base_.worker_restarts = worker_restarts_c_->value();
  base_.stalls_detected = stalls_detected_c_->value();
  if (!config_.checkpoint_path.empty() && resume != Resume::kFresh) {
    const std::uint64_t t0 = clock_->now_ns();
    const LoadResult result = load_checkpoint(config_.checkpoint_path, *pipeline_);
    if (result.ok) {
      checkpoint_restore_seconds_->observe(
          static_cast<double>(clock_->now_ns() - t0) * 1e-9);
      restored_ = true;
      restored_samples_ = result.meta.samples_ingested;
      ingested_c_->add(result.meta.samples_ingested);
      checkpoint_seq_ = result.meta.sequence + 1;
      log(obs::LogLevel::kInfo, "resumed from checkpoint",
          {{"samples", std::to_string(result.meta.samples_ingested)},
           {"sequence", std::to_string(result.meta.sequence)}});
    } else {
      // A failed restore may have partially written the pipeline: discard it.
      pipeline_ = std::make_unique<analysis::Pipeline>(world_);
      pipeline_->set_obs(metrics_, config_.tracer, clock_);
      const bool missing = result.error.rfind("no checkpoint", 0) == 0;
      if (resume == Resume::kRequire || !missing) {
        log(obs::LogLevel::kError, "checkpoint restore refused",
            {{"error", result.error}});
        common::MutexLock lock(lifecycle_mu_);
        error_ = result.error;
        return false;
      }
    }
  }
  draining_.store(false);
  abort_.store(false);
  {
    common::MutexLock lock(lifecycle_mu_);
    terminal_ = false;
    worker_state_ = WorkerState::kRunning;
    spawn_worker();
  }
  running_.store(true);
  watchdog_ = std::thread(&SupervisedService::watchdog_main, this);
  return true;
}

bool SupervisedService::submit(capture::ConnectionSample sample) {
  if (!running_.load() || failed_.load()) return false;
  if (overload_ != nullptr) {
    // Admission control runs before the queue: observe feeds the ladder
    // (sample-cadenced, so hysteresis is deterministic under a seeded load
    // schedule), then admit() decides. Refusals are counted by the
    // controller and folded into DegradedStats at the next checkpoint or
    // report.
    control::OverloadController::Inputs inputs;
    inputs.queue_depth = queue_.size();
    inputs.queue_capacity = config_.queue_capacity;
    inputs.spool_depth = spool_depth_cache_.load(std::memory_order_relaxed);
    overload_->observe(inputs);
    const std::int64_t ts = sample.packets.empty() ? sample.observation_end_sec
                                                   : sample.packets.front().ts_sec;
    const control::AdmissionDecision decision =
        overload_->admit(sample_is_embryonic(sample), ts);
    pipeline_->set_evidence_only(
        !control::policy_for(decision.level).parse_app_proto);
    if (!decision.admit) return false;
  }
  return queue_.push(std::move(sample));
}

void SupervisedService::spawn_worker() {
  worker_ = std::thread(&SupervisedService::worker_main, this);
}

void SupervisedService::worker_main() {
  WorkerState exit_state = WorkerState::kDrained;
  try {
    while (!abort_.load()) {
      const std::uint64_t tick = hook_tick_.fetch_add(1);
      // The hook fires before the pop so an injected crash never loses a
      // sample — the queue still holds it for the restarted stage.
      if (config_.ingest_hook) config_.ingest_hook(tick);
      if (restart_requested_.exchange(false)) throw StageRestartRequested{};
      auto item = queue_.pop_wait(config_.pop_timeout);
      heartbeat_.fetch_add(1);
      last_beat_ns_.store(clock_->now_ns());
      if (abort_.load()) {
        exit_state = WorkerState::kAborted;
        break;
      }
      if (!item) {
        if (queue_.closed()) break;  // closed + empty: fully drained
        continue;
      }
      pipeline_->ingest(*item);
      const std::uint64_t n = ingested_c_->add(1) - base_.ingested;
      if (!config_.checkpoint_path.empty() && config_.checkpoint_every_samples != 0 &&
          n % config_.checkpoint_every_samples == 0)
        write_checkpoint();
      if (emitter_ != nullptr && config_.report_every_samples != 0 &&
          n % config_.report_every_samples == 0)
        emit_report();
    }
    if (abort_.load()) exit_state = WorkerState::kAborted;
  } catch (const StageRestartRequested&) {
    exit_state = WorkerState::kCrashed;
  } catch (...) {
    worker_crashes_c_->add(1);
    log(obs::LogLevel::kWarn, "worker stage crashed");
    exit_state = WorkerState::kCrashed;
  }
  {
    common::MutexLock lock(lifecycle_mu_);
    worker_state_ = exit_state;
  }
  lifecycle_cv_.notify_all();
}

void SupervisedService::watchdog_main() {
  using Clock = std::chrono::steady_clock;
  std::uint64_t last_heartbeat = heartbeat_.load();
  Clock::time_point last_progress = Clock::now();

  common::UniqueLock lock(lifecycle_mu_);
  while (true) {
    lifecycle_cv_.wait_for(lock, config_.watchdog_poll);
    if (worker_state_ == WorkerState::kCrashed) {
      lock.unlock();
      worker_.join();
      lock.lock();
      const std::uint64_t restarts = worker_restarts_c_->value() - base_.worker_restarts;
      const bool budget_left =
          restarts < static_cast<std::uint64_t>(config_.max_worker_restarts);
      if (abort_.load() || !budget_left) {
        if (!abort_.load()) {
          failed_.store(true);
          error_ = "worker restart budget exhausted after " +
                   std::to_string(restarts) + " restarts";
          log(obs::LogLevel::kError, "worker restart budget exhausted",
              {{"restarts", std::to_string(restarts)}});
          queue_.close();  // unblock producers; submit() now refuses
        }
        terminal_ = true;
        break;
      }
      worker_restarts_c_->add(1);
      log(obs::LogLevel::kInfo, "worker stage restarted",
          {{"restarts", std::to_string(restarts + 1)}});
      worker_state_ = WorkerState::kRunning;
      spawn_worker();
      last_heartbeat = heartbeat_.load();
      last_progress = Clock::now();
      continue;
    }
    if (worker_state_ == WorkerState::kDrained || worker_state_ == WorkerState::kAborted) {
      terminal_ = true;
      break;
    }
    const std::uint64_t heartbeat = heartbeat_.load();
    if (heartbeat != last_heartbeat) {
      last_heartbeat = heartbeat;
      last_progress = Clock::now();
    } else if (queue_.size() > 0 && Clock::now() - last_progress > config_.stall_timeout) {
      // The stage is wedged with work pending. We cannot safely terminate
      // a running thread, so request a self-restart: the worker throws on
      // its next live instruction and comes back through the crash path.
      stalls_detected_c_->add(1);
      log(obs::LogLevel::kWarn, "worker stall detected; requesting restart",
          {{"queued", std::to_string(queue_.size())}});
      restart_requested_.store(true);
      last_progress = Clock::now();
    }
  }
  lock.unlock();
  lifecycle_cv_.notify_all();
}

// Fold every degraded-input source into the pipeline's DegradedStats so a
// checkpoint/report emitted right after carries the loss it describes.
void SupervisedService::record_degraded_sources() {
  pipeline_->record_queue_stats(queue_.stats());
  if (emitter_ != nullptr) {
    const ReportEmitter::Stats es = emitter_->stats();
    pipeline_->record_sink_stats(es.spool_replay_failures, es.spool_dropped);
  }
  if (overload_ != nullptr) {
    const control::OverloadStats os = overload_->stats();
    pipeline_->record_overload_stats(os.rate_limited, os.sampled_down,
                                     os.embryonic_shed, os.rejected);
  }
}

void SupervisedService::write_checkpoint() {
  obs::Tracer::Span span(config_.tracer, obs::stage::kCheckpoint,
                         obs::stage::kCategory);
  record_degraded_sources();
  // Sample the trends ring before encoding so the checkpoint carries the
  // point for this boundary — a resumed run re-derives the identical ring.
  pipeline_->sample_trends();
  if (config_.checkpoint_fault_hook && config_.checkpoint_fault_hook()) {
    checkpoint_failures_c_->add(1);
    log(obs::LogLevel::kWarn, "checkpoint write failed",
        {{"error", "injected fault"}});
    return;
  }
  CheckpointMeta meta;
  meta.samples_ingested = ingested_c_->value() - base_.ingested;
  meta.sequence = checkpoint_seq_;
  const std::uint64_t t0 = clock_->now_ns();
  const std::string err = save_checkpoint(config_.checkpoint_path, *pipeline_, meta);
  if (err.empty()) {
    checkpoint_save_seconds_->observe(static_cast<double>(clock_->now_ns() - t0) * 1e-9);
    checkpoints_written_c_->add(1);
    ++checkpoint_seq_;
  } else {
    checkpoint_failures_c_->add(1);
    log(obs::LogLevel::kWarn, "checkpoint write failed", {{"error", err}});
  }
}

void SupervisedService::emit_report(bool force) {
  obs::Tracer::Span span(config_.tracer, obs::stage::kEmit, obs::stage::kCategory);
  // While the circuit breaker is open, periodic emissions are skipped —
  // backpressure instead of an ever-deeper retry/spool hole. The final
  // emission (force, from stop()) always goes out: it is the run's record.
  if (!force && overload_ != nullptr && overload_->breaker_open()) {
    overload_->count_report_skipped();
    log(obs::LogLevel::kWarn, "report emission skipped: circuit breaker open");
    return;
  }
  record_degraded_sources();
  pipeline_->sample_trends();
  // Rescan the watchdog at every report boundary: deterministic events,
  // idempotent metric publication, first-seen lines logged. Epochs where
  // the degraded series rose are suppressed from scoring.
  anomaly_watchdog_.rescan(
      pipeline_->trends(), obs::default_series_catalog(),
      obs::epochs_where_rising(pipeline_->trends(), "degraded"));
  std::string payload;
  if (config_.report_encoder) {
    payload = config_.report_encoder(*pipeline_, ingested_c_->value() - base_.ingested,
                                     overload_state());
  } else {
    std::ostringstream out;
    analysis::ReportOptions report_options;
    report_options.trend_anomalies = &anomaly_watchdog_.last().events;
    analysis::write_radar_report(out, *pipeline_, report_options);
    payload = out.str();
  }
  const bool delivered = emitter_->emit(payload);
  if (overload_ != nullptr) overload_->report_outcome(delivered);
  spool_depth_cache_.store(emitter_->spool_depth(), std::memory_order_relaxed);
  reports_emitted_c_->add(1);
}

RunSummary SupervisedService::stop() { return finish(/*persist=*/true); }

RunSummary SupervisedService::kill() { return finish(/*persist=*/false); }

RunSummary SupervisedService::finish(bool persist) {
  // Two threads racing stop() against kill() (or a destructor) must not
  // both join the watchdog; the first caller does the teardown, the rest
  // wait here and fall through to summarize().
  common::MutexLock finishing(finish_mu_);
  if (running_.load()) {
    if (persist) {
      draining_.store(true);
    } else {
      abort_.store(true);
    }
    queue_.close();
    {
      common::UniqueLock lock(lifecycle_mu_);
      while (!terminal_) lifecycle_cv_.wait(lock);
    }
    if (watchdog_.joinable()) watchdog_.join();
    if (worker_.joinable()) worker_.join();
    running_.store(false);
    if (persist) {
      record_degraded_sources();
      if (!config_.checkpoint_path.empty()) write_checkpoint();
      if (emitter_ != nullptr) emit_report(/*force=*/true);
    }
  }
  return summarize();
}

RunSummary SupervisedService::summarize() {
  // The registry is the single bookkeeping path; the summary is a delta
  // view over it for this run.
  RunSummary s;
  s.ingested = ingested_c_->value() - base_.ingested;
  s.checkpoints_written = checkpoints_written_c_->value() - base_.checkpoints_written;
  s.checkpoint_failures = checkpoint_failures_c_->value() - base_.checkpoint_failures;
  s.reports_emitted = reports_emitted_c_->value() - base_.reports_emitted;
  s.worker_crashes = worker_crashes_c_->value() - base_.worker_crashes;
  s.worker_restarts = worker_restarts_c_->value() - base_.worker_restarts;
  s.stalls_detected = stalls_detected_c_->value() - base_.stalls_detected;
  s.queue = queue_.stats();
  s.overload = overload_stats();
  s.restored = restored_;
  s.restored_samples = restored_samples_;
  s.failed = failed_.load();
  {
    common::MutexLock lock(lifecycle_mu_);
    s.failure = error_;
  }
  return s;
}

}  // namespace tamper::service
