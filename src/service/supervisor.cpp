#include "service/supervisor.h"

#include <sstream>

#include "analysis/report.h"

namespace tamper::service {

namespace {

/// Thrown into the worker loop when the watchdog wants a stalled stage
/// recycled; distinguished from a genuine crash so the crash counter stays
/// honest.
struct StageRestartRequested {};

[[nodiscard]] bool sample_is_embryonic(const capture::ConnectionSample& s) noexcept {
  return s.packets.size() <= 1;  // single bare SYN: the shape floods leave
}

}  // namespace

SupervisedService::SupervisedService(const world::World& world, ServiceConfig config,
                                     ReportEmitter* emitter)
    : world_(world),
      config_(std::move(config)),
      emitter_(emitter),
      pipeline_(std::make_unique<analysis::Pipeline>(world)),
      queue_(config_.queue_capacity, config_.queue_policy, sample_is_embryonic) {}

SupervisedService::~SupervisedService() {
  if (running_.load()) kill();
}

bool SupervisedService::start(Resume resume) {
  if (running_.load()) {
    common::MutexLock lock(lifecycle_mu_);
    error_ = "service already running";
    return false;
  }
  if (!config_.checkpoint_path.empty() && resume != Resume::kFresh) {
    const LoadResult result = load_checkpoint(config_.checkpoint_path, *pipeline_);
    if (result.ok) {
      restored_ = true;
      restored_samples_ = result.meta.samples_ingested;
      ingested_.store(result.meta.samples_ingested);
      checkpoint_seq_ = result.meta.sequence + 1;
    } else {
      // A failed restore may have partially written the pipeline: discard it.
      pipeline_ = std::make_unique<analysis::Pipeline>(world_);
      const bool missing = result.error.rfind("no checkpoint", 0) == 0;
      if (resume == Resume::kRequire || !missing) {
        common::MutexLock lock(lifecycle_mu_);
        error_ = result.error;
        return false;
      }
    }
  }
  draining_.store(false);
  abort_.store(false);
  {
    common::MutexLock lock(lifecycle_mu_);
    terminal_ = false;
    worker_state_ = WorkerState::kRunning;
    spawn_worker();
  }
  running_.store(true);
  watchdog_ = std::thread(&SupervisedService::watchdog_main, this);
  return true;
}

bool SupervisedService::submit(capture::ConnectionSample sample) {
  if (!running_.load() || failed_.load()) return false;
  return queue_.push(std::move(sample));
}

void SupervisedService::spawn_worker() {
  worker_ = std::thread(&SupervisedService::worker_main, this);
}

void SupervisedService::worker_main() {
  WorkerState exit_state = WorkerState::kDrained;
  try {
    while (!abort_.load()) {
      const std::uint64_t tick = hook_tick_.fetch_add(1);
      // The hook fires before the pop so an injected crash never loses a
      // sample — the queue still holds it for the restarted stage.
      if (config_.ingest_hook) config_.ingest_hook(tick);
      if (restart_requested_.exchange(false)) throw StageRestartRequested{};
      auto item = queue_.pop_wait(config_.pop_timeout);
      heartbeat_.fetch_add(1);
      if (abort_.load()) {
        exit_state = WorkerState::kAborted;
        break;
      }
      if (!item) {
        if (queue_.closed()) break;  // closed + empty: fully drained
        continue;
      }
      pipeline_->ingest(*item);
      const std::uint64_t n = ingested_.fetch_add(1) + 1;
      if (!config_.checkpoint_path.empty() && config_.checkpoint_every_samples != 0 &&
          n % config_.checkpoint_every_samples == 0)
        write_checkpoint();
      if (emitter_ != nullptr && config_.report_every_samples != 0 &&
          n % config_.report_every_samples == 0)
        emit_report();
    }
    if (abort_.load()) exit_state = WorkerState::kAborted;
  } catch (const StageRestartRequested&) {
    exit_state = WorkerState::kCrashed;
  } catch (...) {
    worker_crashes_.fetch_add(1);
    exit_state = WorkerState::kCrashed;
  }
  {
    common::MutexLock lock(lifecycle_mu_);
    worker_state_ = exit_state;
  }
  lifecycle_cv_.notify_all();
}

void SupervisedService::watchdog_main() {
  using Clock = std::chrono::steady_clock;
  std::uint64_t last_heartbeat = heartbeat_.load();
  Clock::time_point last_progress = Clock::now();

  common::UniqueLock lock(lifecycle_mu_);
  while (true) {
    lifecycle_cv_.wait_for(lock, config_.watchdog_poll);
    if (worker_state_ == WorkerState::kCrashed) {
      lock.unlock();
      worker_.join();
      lock.lock();
      const bool budget_left =
          worker_restarts_.load() < static_cast<std::uint64_t>(config_.max_worker_restarts);
      if (abort_.load() || !budget_left) {
        if (!abort_.load()) {
          failed_.store(true);
          error_ = "worker restart budget exhausted after " +
                   std::to_string(worker_restarts_.load()) + " restarts";
          queue_.close();  // unblock producers; submit() now refuses
        }
        terminal_ = true;
        break;
      }
      worker_restarts_.fetch_add(1);
      worker_state_ = WorkerState::kRunning;
      spawn_worker();
      last_heartbeat = heartbeat_.load();
      last_progress = Clock::now();
      continue;
    }
    if (worker_state_ == WorkerState::kDrained || worker_state_ == WorkerState::kAborted) {
      terminal_ = true;
      break;
    }
    const std::uint64_t heartbeat = heartbeat_.load();
    if (heartbeat != last_heartbeat) {
      last_heartbeat = heartbeat;
      last_progress = Clock::now();
    } else if (queue_.size() > 0 && Clock::now() - last_progress > config_.stall_timeout) {
      // The stage is wedged with work pending. We cannot safely terminate
      // a running thread, so request a self-restart: the worker throws on
      // its next live instruction and comes back through the crash path.
      stalls_detected_.fetch_add(1);
      restart_requested_.store(true);
      last_progress = Clock::now();
    }
  }
  lock.unlock();
  lifecycle_cv_.notify_all();
}

void SupervisedService::write_checkpoint() {
  pipeline_->record_queue_stats(queue_.stats());
  if (config_.checkpoint_fault_hook && config_.checkpoint_fault_hook()) {
    checkpoint_failures_.fetch_add(1);
    return;
  }
  CheckpointMeta meta;
  meta.samples_ingested = ingested_.load();
  meta.sequence = checkpoint_seq_;
  const std::string err = save_checkpoint(config_.checkpoint_path, *pipeline_, meta);
  if (err.empty()) {
    checkpoints_written_.fetch_add(1);
    ++checkpoint_seq_;
  } else {
    checkpoint_failures_.fetch_add(1);
  }
}

void SupervisedService::emit_report() {
  pipeline_->record_queue_stats(queue_.stats());
  std::ostringstream out;
  analysis::write_radar_report(out, *pipeline_);
  emitter_->emit(out.str());
  reports_emitted_.fetch_add(1);
}

RunSummary SupervisedService::stop() { return finish(/*persist=*/true); }

RunSummary SupervisedService::kill() { return finish(/*persist=*/false); }

RunSummary SupervisedService::finish(bool persist) {
  // Two threads racing stop() against kill() (or a destructor) must not
  // both join the watchdog; the first caller does the teardown, the rest
  // wait here and fall through to summarize().
  common::MutexLock finishing(finish_mu_);
  if (running_.load()) {
    if (persist) {
      draining_.store(true);
    } else {
      abort_.store(true);
    }
    queue_.close();
    {
      common::UniqueLock lock(lifecycle_mu_);
      while (!terminal_) lifecycle_cv_.wait(lock);
    }
    if (watchdog_.joinable()) watchdog_.join();
    if (worker_.joinable()) worker_.join();
    running_.store(false);
    if (persist) {
      pipeline_->record_queue_stats(queue_.stats());
      if (!config_.checkpoint_path.empty()) write_checkpoint();
      if (emitter_ != nullptr) emit_report();
    }
  }
  return summarize();
}

RunSummary SupervisedService::summarize() {
  RunSummary s;
  s.ingested = ingested_.load();
  s.checkpoints_written = checkpoints_written_.load();
  s.checkpoint_failures = checkpoint_failures_.load();
  s.reports_emitted = reports_emitted_.load();
  s.worker_crashes = worker_crashes_.load();
  s.worker_restarts = worker_restarts_.load();
  s.stalls_detected = stalls_detected_.load();
  s.queue = queue_.stats();
  s.restored = restored_;
  s.restored_samples = restored_samples_;
  s.failed = failed_.load();
  {
    common::MutexLock lock(lifecycle_mu_);
    s.failure = error_;
  }
  return s;
}

}  // namespace tamper::service
