// Report delivery with a degradation contract for a failing sink.
//
// The service emits aggregate JSON reports through a Sink. Real sinks fail
// transiently (full disks, flapping endpoints), so ReportEmitter wraps one
// with bounded retries, exponential backoff with seeded jitter, and a
// disk-spool fallback: a report that exhausts its retries is persisted to
// the spool directory and replayed — oldest first — after the next
// successful delivery (including across process restarts). A report is
// therefore either delivered, spooled, or counted as lost; never silently
// dropped and never able to wedge the pipeline forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace tamper::service {

class Sink {
 public:
  virtual ~Sink() = default;
  /// Deliver one serialized report. False (or a throw) means failure.
  virtual bool deliver(const std::string& payload) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Rewrites one file per delivery via temp + atomic rename (the Radar-style
/// "latest aggregate snapshot" shape).
class FileSink final : public Sink {
 public:
  explicit FileSink(std::string path) : path_(std::move(path)) {}
  bool deliver(const std::string& payload) override;
  [[nodiscard]] std::string describe() const override { return "file:" + path_; }

 private:
  std::string path_;
};

/// Failure-injectable in-memory sink for tests and chaos campaigns: every
/// delivery first consults `fail_next` (when set); accepted payloads are
/// retained for assertions.
class MemorySink final : public Sink {
 public:
  std::function<bool()> fail_next;  ///< return true to fail this delivery

  bool deliver(const std::string& payload) override {
    ++attempts_;
    if (fail_next && fail_next()) return false;
    delivered_.push_back(payload);
    return true;
  }
  [[nodiscard]] std::string describe() const override { return "memory"; }
  [[nodiscard]] const std::vector<std::string>& delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  std::vector<std::string> delivered_;
  std::uint64_t attempts_ = 0;
};

struct RetryPolicy {
  int max_attempts = 4;             ///< per report, before spooling
  double initial_backoff_s = 0.02;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1.0;
  double jitter_fraction = 0.25;    ///< uniform +/- fraction of the delay
  /// Spool cap: when a new report would push the spool past this many
  /// entries, the OLDEST entry is evicted (counted in Stats::spool_dropped)
  /// — reports age out rather than the disk filling without bound. 0 means
  /// unbounded (the pre-overload behavior).
  std::size_t max_spool_depth = 0;
};

/// Threading contract: emit()/replay_spool() belong to ONE caller thread at
/// a time (the service worker). stats() and spool_depth() may be called
/// from any thread — e.g. a monitoring loop watching delivery health while
/// the worker is mid-retry — so the counters live behind a mutex.
class ReportEmitter {
 public:
  struct Stats {
    std::uint64_t reports = 0;         ///< emit() calls
    std::uint64_t delivered = 0;       ///< reports the sink accepted (incl. replays)
    std::uint64_t attempts = 0;        ///< individual deliver() calls
    std::uint64_t retries = 0;         ///< attempts beyond the first, per report
    std::uint64_t spooled = 0;         ///< reports parked on disk
    std::uint64_t spool_replayed = 0;  ///< spooled reports later delivered
    std::uint64_t lost = 0;            ///< spool write itself failed
    /// Spool entries that could not be read back at replay (corrupt file,
    /// permissions, stray directory). Each is quarantined (renamed bad-*)
    /// so it cannot wedge future replays, and counted here — this is data
    /// loss after the report was accepted into the spool, so it also feeds
    /// DegradedStats::spool_replay_failures via the supervisor.
    std::uint64_t spool_replay_failures = 0;
    /// Oldest entries evicted to honor RetryPolicy::max_spool_depth — data
    /// loss by explicit policy (feeds DegradedStats::spool_dropped).
    std::uint64_t spool_dropped = 0;
  };

  /// `spool_dir` is created if missing; pass empty to disable spooling
  /// (exhausted reports then count as lost). `sleep_fn` is the backoff
  /// clock — tests inject a recorder to keep campaigns instant.
  ReportEmitter(Sink& sink, RetryPolicy policy, std::string spool_dir, std::uint64_t seed,
                std::function<void(double)> sleep_fn = {});

  /// Deliver with retry/backoff; on exhaustion spool. True iff the report
  /// itself was delivered now.
  bool emit(const std::string& payload);

  /// Attempt delivery of any spooled reports (oldest first); stops at the
  /// first failure. Called automatically after each successful delivery.
  void replay_spool();

  /// Snapshot of the delivery counters (copy: safe off-thread).
  [[nodiscard]] Stats stats() const TAMPER_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return stats_;
  }
  [[nodiscard]] std::size_t spool_depth() const;

 private:
  [[nodiscard]] bool try_deliver(const std::string& payload);
  [[nodiscard]] double backoff_delay(int attempt);
  void spool(const std::string& payload);
  [[nodiscard]] std::vector<std::string> spool_files() const;

  Sink& sink_;
  RetryPolicy policy_;
  std::string spool_dir_;
  common::Rng rng_;  ///< emitter-thread only (jitter for backoff_delay)
  std::function<void(double)> sleep_fn_;
  mutable common::Mutex mu_;  ///< guards the observable counters only; the
                              ///< sink itself is never called under it
  std::uint64_t spool_seq_ TAMPER_GUARDED_BY(mu_) = 0;
  Stats stats_ TAMPER_GUARDED_BY(mu_);
};

}  // namespace tamper::service
