// Supervised streaming service: runs analysis::Pipeline as a long-lived
// worker behind a bounded sample queue, under a watchdog.
//
// Topology (one process):
//
//   producers --submit()--> BoundedQueue --pop--> worker stage
//                                                   | ingest -> Pipeline
//                                                   | periodic checkpoint
//                                                   | periodic report emit
//                                       watchdog: heartbeat / stall / crash
//
// Contract with hostile runtime conditions:
//   * Load spikes   — the queue blocks producers or sheds embryonic-first;
//     every shed lands in DegradedStats (queue_shed_*).
//   * Stage crashes — a throwing ingest hook (chaos) or any internal error
//     is caught at the worker top level; the watchdog joins the dead thread
//     and restarts the stage while the restart budget lasts. Samples are
//     never lost to a crash: the hook runs before the pop.
//   * Stalls        — a frozen worker (heartbeat not advancing while work
//     is queued) is detected by the watchdog, counted, and restarted
//     through the same budget.
//   * kill -9       — at most one checkpoint interval of aggregates is
//     lost; restart with the same checkpoint path resumes mid-stream.
//   * Sink outages  — reports retry with backoff + jitter, then spool to
//     disk and replay later (see service::ReportEmitter).
//
// Shutdown: stop() closes the queue, drains it, writes a final checkpoint
// and emits a final report. kill() abandons in place (the kill -9 model,
// for chaos tests) — threads are joined but no state is persisted.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.h"
#include "capture/sample.h"
#include "common/bounded_queue.h"
#include "common/ids.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "control/overload.h"
#include "obs/anomaly.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "service/checkpoint.h"
#include "service/sink.h"
#include "world/world.h"

namespace tamper::service {

struct ServiceConfig {
  std::size_t queue_capacity = 4096;
  common::QueuePolicy queue_policy = common::QueuePolicy::kBlock;

  /// Checkpoint every N ingested samples (0 disables periodic checkpoints;
  /// the final checkpoint on stop() still happens when a path is set).
  std::uint64_t checkpoint_every_samples = 5000;
  std::string checkpoint_path;  ///< empty disables checkpointing entirely

  /// Emit a report every N ingested samples (0 = only the final report).
  std::uint64_t report_every_samples = 0;

  int max_worker_restarts = 8;
  std::chrono::milliseconds watchdog_poll{10};
  std::chrono::milliseconds stall_timeout{2000};
  std::chrono::milliseconds pop_timeout{20};

  /// Chaos hook, called with the sample index before each pop+ingest; may
  /// throw (stage crash) or sleep (stall). Tests wire fault::ChaosSchedule
  /// in here; production leaves it empty.
  std::function<void(std::uint64_t)> ingest_hook;
  /// Chaos hook consulted before each checkpoint save; return true to fail
  /// the write (the ENOSPC model). Failures are counted, never fatal.
  std::function<bool()> checkpoint_fault_hook;

  /// Report payload seam. Default (empty) emits the Radar JSON report. A
  /// fleet PoP instead encodes an epoch-tagged partial aggregate (see
  /// fleet::encode_partial) so the central merger receives mergeable state,
  /// not rendered JSON. Called on the worker thread with the pipeline, the
  /// cumulative samples-ingested count, and the overload-control state at
  /// emission time (all-zero when overload control is disabled).
  std::function<std::string(const analysis::Pipeline&, std::uint64_t,
                            const control::OverloadState&)>
      report_encoder;

  /// Overload control (disabled by default — `overload.enabled` gates the
  /// whole admission path). When enabled, submit() runs every sample
  /// through control::OverloadController: token-bucket + ladder-stride
  /// admission, watermark-driven degradation, and the report circuit
  /// breaker. `overload.clock` defaults to this config's `clock` seam.
  control::OverloadConfig overload;

  /// Longitudinal trends: the pipeline's epoch ring is configured with this
  /// at construction and sampled at every checkpoint/report boundary (see
  /// Pipeline::sample_trends); the anomaly watchdog rescans it at report
  /// boundaries. History rides the checkpoint, so it survives crash-resume.
  obs::EpochRingConfig trends;
  obs::AnomalyConfig anomaly{};

  /// Fleet PoP id, or nullopt outside a fleet. When set, every structured
  /// log line from this service carries a tamper_pop field (rendered
  /// "pop:<id>"), so interleaved per-PoP logs stay attributable.
  std::optional<common::PopId> pop;

  /// Observability (all optional, all must outlive the service). When
  /// `metrics` is null the service creates a private registry — the
  /// supervision counters are ALWAYS registry-backed; RunSummary is just a
  /// view over them (there is no second bookkeeping path). The clock seam
  /// times checkpoints and the heartbeat-age gauge; tests inject a
  /// ManualClock, production defaults to obs::monotonic_clock().
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::Logger* logger = nullptr;
  const obs::Clock* clock = nullptr;
};

struct RunSummary {
  std::uint64_t ingested = 0;            ///< includes samples restored from checkpoint
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t reports_emitted = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t stalls_detected = 0;
  common::BoundedQueueStats queue;
  control::OverloadStats overload;      ///< all-zero when overload control is off
  bool restored = false;                 ///< start() resumed from a checkpoint
  std::uint64_t restored_samples = 0;
  bool failed = false;                   ///< restart budget exhausted
  std::string failure;
};

class SupervisedService {
 public:
  enum class Resume : std::uint8_t {
    kResumeOrFresh,  ///< resume a valid checkpoint; fresh if none; REFUSE corrupt
    kFresh,          ///< ignore any existing checkpoint
    kRequire,        ///< refuse to start without a valid checkpoint
  };

  /// `emitter` may be null (no report emission). The world must outlive
  /// the service (the pipeline holds a reference).
  SupervisedService(const world::World& world, ServiceConfig config,
                    ReportEmitter* emitter);
  ~SupervisedService();

  SupervisedService(const SupervisedService&) = delete;
  SupervisedService& operator=(const SupervisedService&) = delete;

  /// Restore (per `resume`) and launch worker + watchdog. False on refusal
  /// (see error()); the service then never started and holds fresh state.
  [[nodiscard]] bool start(Resume resume = Resume::kResumeOrFresh);

  /// Enqueue one sample. Blocks or sheds per the queue policy; false once
  /// the service is stopping or failed.
  bool submit(capture::ConnectionSample sample);

  /// Graceful shutdown: drain queue -> final checkpoint -> final report.
  RunSummary stop();

  /// Abandon in place without draining or persisting — the in-process
  /// stand-in for kill -9 in chaos tests.
  RunSummary kill();

  /// True while worker + watchdog are live.
  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  /// Restart-budget exhaustion (the queue is closed once this trips).
  [[nodiscard]] bool failed() const noexcept { return failed_.load(); }
  /// Last refusal/failure message. Safe to call while the watchdog is
  /// still live, hence the copy under the lifecycle lock.
  [[nodiscard]] std::string error() const TAMPER_EXCLUDES(lifecycle_mu_) {
    common::MutexLock lock(lifecycle_mu_);
    return error_;
  }

  /// Only meaningful once the service is no longer running.
  [[nodiscard]] const analysis::Pipeline& pipeline() const { return *pipeline_; }

  /// The anomaly watchdog's latest scan (rescanned at report boundaries).
  /// Like pipeline(): only meaningful once the service is no longer running.
  [[nodiscard]] const obs::AnomalyScan& anomalies() const noexcept {
    return anomaly_watchdog_.last();
  }

  /// Samples ingested by this run so far (restored count included; atomic
  /// counter read, any thread). Chaos harnesses poll this to wait for the
  /// worker to reach a stream position before injecting a fault there.
  [[nodiscard]] std::uint64_t ingested() const noexcept {
    return ingested_c_->value() - base_.ingested;
  }

  /// The registry backing the supervision counters: the configured one, or
  /// the private registry the service created when none was given. Live for
  /// the whole service lifetime; snapshots may be taken from any thread.
  [[nodiscard]] obs::Registry& metrics() noexcept { return *metrics_; }

  /// Overload-control accounting (all-zero defaults when disabled). Safe
  /// from any thread, any time.
  [[nodiscard]] control::OverloadStats overload_stats() const {
    return overload_ != nullptr ? overload_->stats() : control::OverloadStats{};
  }
  [[nodiscard]] control::OverloadState overload_state() const {
    return overload_ != nullptr ? overload_->state() : control::OverloadState{};
  }
  [[nodiscard]] control::Level overload_level() const {
    return overload_ != nullptr ? overload_->level() : control::Level::kNormal;
  }

 private:
  enum class WorkerState : std::uint8_t { kIdle, kRunning, kCrashed, kDrained, kAborted };

  void worker_main();
  void watchdog_main();
  void spawn_worker() TAMPER_REQUIRES(lifecycle_mu_);
  void register_metrics();
  void log(obs::LogLevel level, std::string_view message,
           std::initializer_list<obs::LogField> fields = {}) const {
    if (config_.logger == nullptr) return;
    if (!config_.pop) {
      config_.logger->log(level, "supervisor", message, fields);
      return;
    }
    // Fleet context: stamp every line with the PoP id so interleaved
    // per-PoP logs stay attributable.
    std::vector<obs::LogField> tagged(fields);
    tagged.push_back({"tamper_pop", common::format(*config_.pop)});
    config_.logger->log(level, "supervisor", message, tagged);
  }
  void write_checkpoint();
  void emit_report(bool force = false);
  void record_degraded_sources();
  RunSummary finish(bool persist);
  [[nodiscard]] RunSummary summarize() TAMPER_EXCLUDES(lifecycle_mu_);

  const world::World& world_;
  ServiceConfig config_;
  ReportEmitter* emitter_;
  std::unique_ptr<analysis::Pipeline> pipeline_;
  common::BoundedQueue<capture::ConnectionSample> queue_;
  /// Null unless config_.overload.enabled. Destroyed explicitly detached
  /// from the registry (see ~SupervisedService) because owned_metrics_ may
  /// die first.
  std::unique_ptr<control::OverloadController> overload_;
  /// Rescans the pipeline's trends ring at report boundaries. Driven only
  /// by the thread currently owning the pipeline (worker, or finish() after
  /// the final join), like checkpoint_seq_.
  obs::AnomalyWatchdog anomaly_watchdog_;
  /// Emitter spool depth is a directory scan; submit() reads this cache
  /// (refreshed at every emission) instead of hitting the filesystem per
  /// sample.
  std::atomic<std::size_t> spool_depth_cache_{0};

  // The worker handle is owned by whichever thread most recently observed
  // its exit: the watchdog (join + respawn on crash) or finish() (final
  // join after the watchdog has itself terminated). Both accesses are
  // sequenced by the watchdog's lifetime, not by lifecycle_mu_.
  std::thread worker_;
  std::thread watchdog_;
  common::Mutex finish_mu_;              ///< serializes concurrent stop()/kill()
  mutable common::Mutex lifecycle_mu_;   ///< guards supervision state below
  std::condition_variable_any lifecycle_cv_;
  WorkerState worker_state_ TAMPER_GUARDED_BY(lifecycle_mu_) = WorkerState::kIdle;
  bool terminal_ TAMPER_GUARDED_BY(lifecycle_mu_) = false;  ///< watchdog done

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> abort_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> restart_requested_{false};
  std::atomic<std::uint64_t> hook_tick_{0};
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<std::uint64_t> last_beat_ns_{0};  ///< clock stamp of last heartbeat

  // Supervision counters live in the metrics registry — the single
  // bookkeeping path. The handles are resolved once in the constructor and
  // are plain relaxed atomics underneath, so every former fetch_add is the
  // same cost. A registry may outlive (or be shared across) services, so
  // start() records each counter's base and RunSummary reports the delta.
  obs::Registry* metrics_ = nullptr;  ///< config_.metrics or owned_metrics_
  std::unique_ptr<obs::Registry> owned_metrics_;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* ingested_c_ = nullptr;
  obs::Counter* checkpoints_written_c_ = nullptr;
  obs::Counter* checkpoint_failures_c_ = nullptr;
  obs::Counter* reports_emitted_c_ = nullptr;
  obs::Counter* worker_crashes_c_ = nullptr;
  obs::Counter* worker_restarts_c_ = nullptr;
  obs::Counter* stalls_detected_c_ = nullptr;
  obs::Histogram* checkpoint_save_seconds_ = nullptr;
  obs::Histogram* checkpoint_restore_seconds_ = nullptr;
  obs::Registry::CollectorId collector_ = 0;
  struct CounterBases {
    std::uint64_t ingested = 0;
    std::uint64_t checkpoints_written = 0;
    std::uint64_t checkpoint_failures = 0;
    std::uint64_t reports_emitted = 0;
    std::uint64_t worker_crashes = 0;
    std::uint64_t worker_restarts = 0;
    std::uint64_t stalls_detected = 0;
  };
  CounterBases base_;  ///< written by start() pre-spawn only (like restored_)
  // checkpoint_seq_ is only touched by the thread currently driving the
  // pipeline: start() before spawning, then the worker, then finish()
  // after the final join. Each handoff is a thread create/join, so the
  // accesses are ordered without a lock.
  std::uint64_t checkpoint_seq_ = 0;
  bool restored_ = false;                ///< written by start() pre-spawn only
  std::uint64_t restored_samples_ = 0;   ///< written by start() pre-spawn only
  std::string error_ TAMPER_GUARDED_BY(lifecycle_mu_);
};

}  // namespace tamper::service
