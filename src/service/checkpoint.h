// Versioned, checksummed checkpoints of all pipeline aggregate state.
//
// The streaming service survives kill -9 by periodically persisting every
// aggregator (via analysis::Pipeline::snapshot) into a small envelope:
//
//   magic   "TSCKPT01"                    (8 bytes)
//   version u32                           (kVersion)
//   size    u64                           (payload byte count)
//   payload                               (BinWriter stream)
//   checksum u64                          (FNV-1a over payload)
//
// Files are written snapshot-to-temp + fsync + atomic rename, so a crash
// mid-write leaves the previous checkpoint intact. Loading refuses — with
// an error message, never a crash or partial state — anything truncated,
// bit-flipped, version-skewed, or short; tests/test_service.cpp proves the
// refusal for truncation at every byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/pipeline.h"

namespace tamper::service {

inline constexpr char kCheckpointMagic[8] = {'T', 'S', 'C', 'K', 'P', 'T', '0', '1'};
// v2: DegradedStats gained spool_replay_failures; Pipeline serializes
// latest_ts_sec (fleet epoch tagging). v3: DegradedStats gained the
// overload-control admission counters and spool_dropped. v4: Pipeline
// serializes the trends epoch ring (obs/timeseries.h), so longitudinal
// history survives crash-resume. Older images are refused, not migrated:
// checkpoints are short-lived operational state, not archives.
inline constexpr std::uint32_t kCheckpointVersion = 4;

struct CheckpointMeta {
  std::uint64_t samples_ingested = 0;  ///< pipeline position at snapshot time
  std::uint64_t sequence = 0;          ///< monotone checkpoint counter
};

struct LoadResult {
  bool ok = false;
  std::string error;  ///< human-readable refusal reason when !ok
  CheckpointMeta meta;
};

/// Serialize meta + pipeline into a complete checkpoint image (envelope
/// included). Pure function of the aggregate state: byte-stable across
/// save -> restore -> save.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const analysis::Pipeline& pipeline,
                                                          const CheckpointMeta& meta);

/// Validate an image and restore it into `pipeline`. On refusal (!ok) the
/// pipeline may be partially written — restore into a pipeline you are
/// willing to discard (the service always decodes into a fresh one).
LoadResult decode_checkpoint(const std::vector<std::uint8_t>& bytes,
                             analysis::Pipeline& pipeline);

/// Atomically persist a checkpoint: write <path>.tmp, fsync, rename.
/// Returns an empty string on success, else the failure reason.
std::string save_checkpoint(const std::string& path, const analysis::Pipeline& pipeline,
                            const CheckpointMeta& meta);

/// Read + decode a checkpoint file. A missing file is a refusal whose
/// error starts with "no checkpoint".
LoadResult load_checkpoint(const std::string& path, analysis::Pipeline& pipeline);

}  // namespace tamper::service
