// Compact version of the §5.6 case study: Iran around the September 2022
// protests, built from the packaged scenario — and fed through the
// longitudinal change detector to show the operational alerting workflow.
//
//   ./examples/iran_case_study [connections]
#include <array>
#include <iostream>

#include "analysis/changes.h"
#include "analysis/pipeline.h"
#include "common/table.h"
#include "world/scenarios.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t connections = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60'000;

  const world::Scenario scenario = world::iran_protests_2022();
  world::TrafficGenerator generator = scenario.make_generator();
  analysis::Pipeline pipeline(*scenario.world);

  const int ir = world::country_index("IR");
  const common::SimTime window_start = scenario.traffic.window_start;
  const common::SimTime window_end = scenario.traffic.window_end;
  common::Rng rng(5151);
  for (std::size_t i = 0; i < connections; ++i)
    pipeline.ingest(generator.generate_at(ir, rng.uniform(window_start, window_end)).sample);

  common::print_banner(std::cout, "Iran, September 2022: daily signature match rates");
  common::TextTable table(
      {"Date", "connections", "any match", "post-handshake timeouts", "SYN→RST"});
  std::map<std::int64_t, std::array<std::uint64_t, 4>> days;
  for (const auto& [hour, bucket] : pipeline.timeseries().country_hours("IR")) {
    const std::int64_t day =
        static_cast<std::int64_t>((hour * 3600.0 - window_start) / 86400.0);
    auto& d = days[day];
    d[0] += bucket.connections;
    for (std::size_t s = 0; s < core::kSignatureCount; ++s) d[1] += bucket.by_signature[s];
    d[2] += bucket.by_signature[static_cast<std::size_t>(core::Signature::kAckNone)];
    d[3] += bucket.by_signature[static_cast<std::size_t>(core::Signature::kSynRst)];
  }
  for (const auto& [day, d] : days) {
    table.add_row({common::format_date(window_start + static_cast<double>(day) * 86400.0),
                   common::TextTable::num(d[0]),
                   common::TextTable::pct(common::percent(d[1], d[0])),
                   common::TextTable::pct(common::percent(d[2], d[0])),
                   common::TextTable::pct(common::percent(d[3], d[0]))});
  }
  table.print(std::cout);

  // The operational view: what an automated monitor would have alerted on.
  analysis::ChangeDetectorConfig config;
  config.recent_hours = 96;
  config.z_threshold = 4.0;
  const auto events = analysis::detect_changes(pipeline.timeseries(), config);
  std::cout << "\nChange-detector alerts (recent 4 days vs the rest):\n";
  int shown = 0;
  for (const auto& event : events) {
    if (event.country != "IR") continue;
    std::cout << "  " << (event.is_surge() ? "SURGE " : "DROP  ") << event.country << "  "
              << core::name(event.signature) << "  "
              << common::TextTable::pct(event.baseline_pct) << " -> "
              << common::TextTable::pct(event.recent_pct)
              << "  (z=" << common::TextTable::num(event.z_score, 1) << ")\n";
    if (++shown >= 6) break;
  }
  if (shown == 0) std::cout << "  (no alerts above threshold at this sample size)\n";
  std::cout << "\nThe ramp after 2022-09-13 mirrors Figure 8: surging timeouts after\n"
               "the handshake (dropped ClientHellos) and SYN-stage resets, carried\n"
               "mostly by the mobile carriers.\n";
  return 0;
}
