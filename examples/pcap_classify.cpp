// Classify connections from a pcap capture — the path a real deployment
// would use: feed server-side inbound packets through the connection
// sampler and run the signature classifier over the assembled flows.
//
//   ./examples/pcap_classify <capture.pcap> [server_port]
//
// With no arguments it synthesizes a demo capture first (a mix of clean and
// tampered sessions) so the example is runnable out of the box.
#include <fstream>
#include <iostream>

#include "appproto/dpi.h"
#include "capture/sampler.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/classifier.h"
#include "net/pcap.h"
#include "world/traffic.h"

using namespace tamper;

namespace {

/// Build a small demo capture: every inbound packet of 400 simulated
/// connections, written as one pcap (as a span-port tap would record them).
std::string make_demo_capture() {
  const std::string path = "demo_capture.pcap";
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0xdeca4;
  world::TrafficGenerator generator(world, traffic);

  std::ofstream out(path, std::ios::binary);
  net::PcapWriter writer(out);
  generator.generate(400, [&](world::LabeledConnection&& conn) {
    for (const auto& observed : conn.sample.packets) {
      // Reconstruct wire packets from the capture record.
      net::Packet pkt = net::make_tcp_packet(conn.sample.client_ip,
                                             conn.sample.client_port,
                                             conn.sample.server_ip,
                                             conn.sample.server_port, observed.flags,
                                             observed.seq, observed.ack, observed.payload);
      pkt.timestamp = static_cast<double>(observed.ts_sec);
      pkt.ip.ttl = observed.ttl;
      pkt.ip.ip_id = observed.ip_id;
      writer.write(pkt);
    }
  });
  std::cout << "wrote demo capture: " << path << " (" << writer.packets_written()
            << " packets)\n\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : make_demo_capture();

  capture::ConnectionSampler::Config config;
  config.sample_one_in = 1;  // classify every flow in the capture
  capture::ConnectionSampler sampler(config);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  net::PcapReader reader(in);
  double last_ts = 0.0;
  while (auto pkt = reader.next()) {
    last_ts = pkt->timestamp;
    sampler.on_packet(*pkt, pkt->timestamp);
  }
  auto samples = sampler.flush_all(last_ts + 60.0);

  core::SignatureClassifier classifier;
  common::LabelCounter verdicts;
  std::uint64_t tampered_with_domain = 0;
  common::LabelCounter domains;
  for (const auto& sample : samples) {
    const auto verdict = classifier.classify(sample);
    if (verdict.signature) {
      verdicts.add(std::string(core::name(*verdict.signature)));
      if (const auto* payload = sample.first_data_payload()) {
        const auto dpi = appproto::inspect_payload(*payload);
        if (dpi.domain) {
          ++tampered_with_domain;
          domains.add(*dpi.domain);
        }
      }
    } else {
      verdicts.add(verdict.possibly_tampered ? "(possibly tampered, unmatched)"
                                             : "Not Tampering");
    }
  }

  std::cout << "frames read: " << reader.frames_read() << ", flows assembled: "
            << samples.size() << "\n\n";
  common::TextTable table({"Verdict", "Flows"});
  for (const auto& [label, count] : verdicts.top(25))
    table.add_row({label, common::TextTable::num(count)});
  table.print(std::cout);

  if (tampered_with_domain > 0) {
    std::cout << "\nmost-tampered domains visible in this capture:\n";
    for (const auto& [domain, count] : domains.top(8))
      std::cout << "  " << domain << "  (" << count << " flows)\n";
  }
  return 0;
}
