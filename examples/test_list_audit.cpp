// Test-list auditing (§5.5): run a global scenario, collect the domains we
// passively observed being tampered with in a region, and report how many
// of them each active-measurement test list would have covered — including
// concrete examples of missed domains, which is exactly the feedback loop
// the paper proposes for improving test lists.
//
//   ./examples/test_list_audit [region] [connections]
#include <iostream>

#include "analysis/pipeline.h"
#include "analysis/testlists.h"
#include "common/table.h"
#include "world/traffic.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::string region = argc > 1 ? argv[1] : "CN";
  const std::size_t connections =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150'000;

  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0xa0d17;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);
  pipeline.run(generator, connections);

  const std::uint64_t threshold = std::max<std::uint64_t>(2, connections / 150'000);
  const auto observed = pipeline.categories().tampered_domains(region, threshold);
  if (observed.empty()) {
    std::cout << "No tampered domains observed for region " << region
              << " at this sample size; try more connections.\n";
    return 0;
  }

  analysis::TestListBuilder builder(world, 0x5eed);
  const auto battery = builder.standard_battery();

  common::print_banner(std::cout, "Test-list coverage audit for " + region);
  std::cout << "observed tampered domains (>=" << threshold
            << " tampered connections): " << observed.size() << "\n\n";

  common::TextTable table({"List", "#Entries", "Exact coverage", "Substring coverage"});
  for (const auto& list : battery) {
    const analysis::Coverage c = analysis::audit_coverage(list, observed);
    table.add_row({list.name, common::TextTable::num(std::uint64_t{list.entries.size()}),
                   common::TextTable::pct(c.exact_pct()),
                   common::TextTable::pct(c.substring_pct())});
  }
  table.print(std::cout);

  // The actionable part: domains active measurement would have missed.
  const auto& citizenlab = battery[10];
  const auto& greatfire = battery[8];
  std::cout << "\nObserved-tampered domains missing from both curated lists\n"
               "(candidates for test-list inclusion):\n";
  int shown = 0;
  for (const auto& domain : observed) {
    if (citizenlab.contains(domain) || greatfire.contains(domain)) continue;
    std::cout << "  " << domain;
    if (const auto rank = world.domains().rank_of(domain)) {
      std::cout << "   (popularity rank " << *rank << ", "
                << world::name(world.domains().by_rank(*rank).category) << ")";
    }
    std::cout << '\n';
    if (++shown >= 15) break;
  }
  if (shown == 0) std::cout << "  (none at this sample size)\n";
  return 0;
}
