// Quickstart: generate a slice of synthetic global traffic, run the passive
// tampering classifier over the server-side samples, and print the global
// signature distribution — the whole library in ~60 lines.
//
//   ./examples/quickstart [connections] [seed]
#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/classifier.h"
#include "world/traffic.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t connections = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Build a synthetic Internet (countries, ASes, domains, censors).
  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);

  // 2. Generate traffic as observed at the CDN edge: for each connection we
  //    get the paper's exact capture record (first 10 inbound packets, 1 s
  //    timestamps) plus hidden ground truth.
  world::TrafficConfig traffic_cfg;
  traffic_cfg.seed = seed ^ 0x1234;
  world::TrafficGenerator generator(world, traffic_cfg);

  // 3. Classify each sample against the 19 tampering signatures.
  core::SignatureClassifier classifier;
  common::LabelCounter by_signature;
  std::uint64_t possibly_tampered = 0, matched = 0, tampered_truth = 0, detected_truth = 0;

  generator.generate(connections, [&](world::LabeledConnection&& conn) {
    const core::Classification result = classifier.classify(conn.sample);
    if (result.possibly_tampered) ++possibly_tampered;
    if (result.signature) {
      ++matched;
      by_signature.add(std::string(core::name(*result.signature)));
    } else {
      by_signature.add(result.possibly_tampered ? "(unmatched possibly-tampered)"
                                                : "Not Tampering");
    }
    if (conn.truth.tampered) {
      ++tampered_truth;
      if (result.possibly_tampered) ++detected_truth;
    }
  });

  std::cout << "connections:          " << connections << '\n'
            << "possibly tampered:    " << possibly_tampered << " ("
            << common::TextTable::pct(common::percent(possibly_tampered, connections))
            << ")\n"
            << "signature matches:    " << matched << " ("
            << common::TextTable::pct(common::percent(matched, possibly_tampered))
            << " of possibly tampered)\n"
            << "ground-truth tampered: " << tampered_truth << ", flagged by classifier: "
            << detected_truth << " ("
            << common::TextTable::pct(common::percent(detected_truth, tampered_truth))
            << " recall)\n\n";

  common::TextTable table({"Signature", "Connections", "% of all"});
  for (const auto& [label, count] : by_signature.top(25)) {
    table.add_row({label, common::TextTable::num(count),
                   common::TextTable::pct(common::percent(count, connections))});
  }
  table.print(std::cout);
  return 0;
}
