// Single-connection deep dive: a client behind a GFW-style censor requests
// a blocked domain over TLS. Prints the full bidirectional packet trace with
// ground truth, the server-side capture record, the classifier verdict, and
// the IP-ID/TTL injection evidence — then exports the server tap to a pcap
// file you can open in Wireshark.
//
//   ./examples/gfw_simulation [output.pcap]
#include <iostream>

#include "analysis/evidence.h"
#include "appproto/tls.h"
#include "capture/sample.h"
#include "core/classifier.h"
#include "middlebox/catalog.h"
#include "middlebox/middlebox.h"
#include "net/pcap.h"
#include "tcp/session.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::string pcap_path = argc > 1 ? argv[1] : "gfw_session.pcap";
  const std::string blocked_domain = "falconnews1234.org";

  // Client: an ordinary browser stack requesting the blocked domain.
  tcp::EndpointConfig client_cfg;
  client_cfg.addr = *net::IpAddress::parse("11.64.3.21");
  client_cfg.port = 51544;
  client_cfg.is_client = true;
  client_cfg.isn = 1'000'000;
  common::Rng payload_rng(2024);
  appproto::ClientHelloSpec hello;
  hello.sni = blocked_domain;
  client_cfg.request_segments = {appproto::build_client_hello(hello, payload_rng)};

  // Server: a CDN edge.
  tcp::EndpointConfig server_cfg;
  server_cfg.addr = *net::IpAddress::parse("198.18.0.44");
  server_cfg.port = 443;
  server_cfg.is_client = false;
  server_cfg.isn = 7'000'000;
  server_cfg.response_size = 4096;

  // The censor: GFW-style mixed RST/RST+ACK burst triggered on the SNI.
  tcp::SessionConfig session;
  session.start_time = common::from_civil(2023, 1, 17, 3, 12, 9);
  session.geometry.total_hops = 16;
  session.geometry.middlebox_hop = 4;
  middlebox::TriggerSet triggers;
  triggers.add_domain_suffix(blocked_domain);
  middlebox::Middlebox censor(middlebox::catalog::gfw_mixed_burst(), std::move(triggers),
                              session.geometry, common::Rng(7));

  tcp::TcpEndpoint client(client_cfg, common::Rng(1));
  tcp::TcpEndpoint server(server_cfg, common::Rng(2));
  client.set_peer(server_cfg.addr, server_cfg.port);
  server.set_peer(client_cfg.addr, client_cfg.port);
  common::Rng rng(3);
  const tcp::SessionResult result =
      tcp::simulate_session(client, server, &censor, session, rng);

  std::cout << "=== Full path trace (ground truth view) ===\n";
  for (const auto& traced : result.full_trace) {
    std::cout << (traced.dir == tcp::Direction::kClientToServer ? "  -> " : "  <- ")
              << traced.pkt.summary() << (traced.injected ? "   [INJECTED]" : "")
              << '\n';
  }
  std::cout << "\ncensor triggered: " << (censor.triggered() ? "yes" : "no")
            << ", on domain: " << censor.trigger_domain().value_or("-") << "\n\n";

  // The server-side tap: what the passive detector actually gets to see.
  capture::ConnectionSample sample;
  sample.client_ip = client_cfg.addr;
  sample.server_ip = server_cfg.addr;
  sample.client_port = client_cfg.port;
  sample.server_port = server_cfg.port;
  for (const auto& traced : result.server_inbound) {
    if (sample.packets.size() >= 10) break;
    sample.packets.push_back(capture::observe(traced.pkt));
  }
  sample.observation_end_sec = static_cast<std::int64_t>(result.end_time);

  std::cout << "=== Server-side capture (inbound only, 1 s timestamps) ===\n";
  for (const auto& pkt : sample.packets) {
    std::cout << "  t=" << pkt.ts_sec << "  " << net::flags_to_string(pkt.flags)
              << "  seq=" << pkt.seq << " ack=" << pkt.ack << " len=" << pkt.payload_len
              << " ttl=" << int(pkt.ttl) << " ipid=" << pkt.ip_id << '\n';
  }

  const core::Classification verdict = core::SignatureClassifier{}.classify(sample);
  std::cout << "\n=== Classifier verdict ===\n"
            << "  possibly tampered: " << (verdict.possibly_tampered ? "yes" : "no")
            << "\n  signature:         "
            << (verdict.signature ? core::name(*verdict.signature) : "(none)")
            << "\n  stage:             " << core::name(verdict.stage)
            << "\n  tear-down packets: " << verdict.rst_count << " RST, "
            << verdict.rst_ack_count << " RST+ACK\n";

  const analysis::EvidenceDeltas evidence = analysis::evidence_deltas(sample, verdict);
  std::cout << "\n=== Injection evidence (Figs. 2-3) ===\n";
  if (evidence.max_ipid_delta)
    std::cout << "  max IP-ID delta vs preceding packet: " << *evidence.max_ipid_delta
              << "  (client counter would be ~1)\n";
  if (evidence.max_ttl_delta)
    std::cout << "  max TTL delta vs preceding packet:   " << int(*evidence.max_ttl_delta)
              << "  (same-stack packets would be ~0)\n";

  std::vector<net::Packet> inbound;
  for (const auto& traced : result.server_inbound) inbound.push_back(traced.pkt);
  net::write_pcap_file(pcap_path, inbound);
  std::cout << "\nserver-side capture written to " << pcap_path << " ("
            << inbound.size() << " packets)\n";
  return 0;
}
