#!/usr/bin/env bash
# Observability smoke gate: run `tamperscope watch` for real and re-parse
# everything it writes with the obs/validate tiny parsers (via obscheck):
#
#   1. clean run      — Prometheus text, JSON snapshot and Chrome trace all
#                       parse, and the snapshot carries the schema marker;
#   2. SIGTERM drain  — the final flush after a mid-run signal must still
#                       leave a complete Prometheus file and a trace with a
#                       valid `]` terminator behind (exit code 128+15);
#   3. trends         — the watch run's `tamper-timeseries/1` dump parses,
#                       `tamperscope trends` reads the history back out of
#                       the checkpoint, and its --json re-dump parses too.
#
# Usage: tools/obs_smoke.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
TS="$BUILD/tools/tamperscope"
CHECK="$BUILD/tools/obscheck"
for bin in "$TS" "$CHECK"; do
  if [ ! -x "$bin" ]; then
    echo "obs_smoke: missing $bin (build the tools target first)" >&2
    exit 2
  fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== obs smoke: clean run =="
"$TS" watch --connections 2000 --seed 7 --queue 256 \
  --checkpoint "$TMP/ckpt" --checkpoint-every 500 \
  --report "$TMP/report.json" \
  --metrics-out "$TMP/clean.prom" --metrics-interval 50 \
  --trace-out "$TMP/clean.trace.json" --log-format json >"$TMP/clean.out"
"$CHECK" prom "$TMP/clean.prom"
"$CHECK" trace "$TMP/clean.trace.json"
if ! grep -q 'tamper-metrics/1' "$TMP/clean.prom.json"; then
  echo "obs_smoke: JSON snapshot missing tamper-metrics/1 schema marker" >&2
  exit 1
fi
if ! grep -q '^tamper_ingest_samples_total 2000$' "$TMP/clean.prom"; then
  echo "obs_smoke: expected tamper_ingest_samples_total 2000 in clean.prom" >&2
  exit 1
fi

echo "== obs smoke: trends =="
"$TS" watch --connections 2000 --seed 7 --queue 256 \
  --checkpoint "$TMP/trends-ckpt" --checkpoint-every 500 --report-every 500 \
  --report "$TMP/trends-report.json" \
  --timeseries-out "$TMP/trends.ts.json" --log-format json >"$TMP/trends.out"
"$CHECK" timeseries "$TMP/trends.ts.json"
if ! grep -q 'tamper-timeseries/1' "$TMP/trends.ts.json"; then
  echo "obs_smoke: timeseries dump missing tamper-timeseries/1 schema marker" >&2
  exit 1
fi
"$TS" trends "$TMP/trends-ckpt" --json "$TMP/trends.offline.json" >"$TMP/trends.query.out"
if ! grep -q 'history:' "$TMP/trends.query.out"; then
  echo "obs_smoke: tamperscope trends printed no history summary" >&2
  cat "$TMP/trends.query.out" >&2 || true
  exit 1
fi
"$CHECK" timeseries "$TMP/trends.offline.json"

echo "== obs smoke: SIGTERM drain =="
# Enough offered load to guarantee the signal lands mid-run, even on a
# fast machine; after the handler fires the generator drains cheaply.
"$TS" watch --connections 5000000 --seed 9 --queue 256 \
  --report "$TMP/drain-report.json" \
  --metrics-out "$TMP/drain.prom" --metrics-interval 50 \
  --trace-out "$TMP/drain.trace.json" --log-format json \
  >"$TMP/drain.out" 2>"$TMP/drain.err" &
PID=$!
# Signal only once the first periodic snapshot exists: by then the service
# is up and the handlers are installed, so we test the mid-run drain path
# rather than racing process startup (sanitizer builds start slowly).
ok=0
for _ in $(seq 1 600); do
  if [ -f "$TMP/drain.prom" ]; then ok=1; break; fi
  if ! kill -0 "$PID" 2>/dev/null; then break; fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "obs_smoke: drain watch never wrote a first snapshot" >&2
  kill -9 "$PID" 2>/dev/null || true
  exit 1
fi
kill -TERM "$PID" 2>/dev/null || true
rc=0
wait "$PID" || rc=$?
if [ "$rc" -ne 143 ]; then
  echo "obs_smoke: expected exit 143 (128+SIGTERM) from drained watch, got $rc" >&2
  cat "$TMP/drain.err" >&2 || true
  exit 1
fi
"$CHECK" prom "$TMP/drain.prom"
"$CHECK" trace "$TMP/drain.trace.json"
if ! grep -q 'final metrics snapshot written' "$TMP/drain.err"; then
  echo "obs_smoke: drained run never logged its final snapshot flush" >&2
  exit 1
fi

echo "== obs smoke passed =="
