// tamperscope — command-line front end to libtamper.
//
//   tamperscope signatures
//       Print the Table 1 signature taxonomy.
//
//   tamperscope classify <capture.pcap> [--json] [--port N]
//       Assemble flows from a pcap of server-side inbound packets and
//       classify each against the tampering signatures.
//
//   tamperscope simulate [--connections N] [--seed S] [--json report.json]
//                        [--pcap tampered.pcap]
//       Run the synthetic global scenario, print the per-country summary,
//       optionally export a Radar-style JSON report and a pcap of sampled
//       tampered connections.
//
//   tamperscope testlists [--region CC] [--connections N]
//       Audit test-list coverage of passively observed tampered domains.
//
//   tamperscope watch [--connections N] [--seed S] [--checkpoint FILE]
//                     [--fresh] [--report out.json] [--spool DIR]
//                     [--queue N] [--shed] [--checkpoint-every N]
//                     [--report-every N] [--metrics-out PATH]
//                     [--metrics-interval MS] [--trace-out PATH]
//                     [--overload] [--admit-rate N] [--admit-burst N]
//                     [--timeseries-out PATH] [--epoch-sec N]
//       Run the analysis pipeline as a supervised streaming service:
//       bounded ingest queue, periodic checkpoints (resume with the same
//       --checkpoint path), report sink with retry + spool. SIGINT/SIGTERM
//       drain the queue, write a final checkpoint, and emit a final report;
//       a SECOND SIGINT/SIGTERM during the drain force-exits immediately
//       with code 128+sig. --overload enables the admission controller +
//       degradation ladder (--admit-rate/--admit-burst bound the sustained
//       ingest rate) and prints the ladder/shed summary on exit.
//       --metrics-out snapshots Prometheus text (and PATH.json) every
//       --metrics-interval ms, with a final flush on shutdown; --trace-out
//       writes a Perfetto-loadable Chrome trace of pipeline stage spans.
//       --timeseries-out writes the final `tamper-timeseries/1` dump of the
//       pipeline's epoch ring (scope "local", --epoch-sec wide epochs) with
//       the watchdog's last anomaly scan.
//
//   tamperscope fleet [--pops N] [--connections N] [--seed S] [--state DIR]
//                     [--report out.json] [--report-every N]
//                     [--checkpoint-every N] [--kill-pop P] [--lose-pop P]
//                     [--metrics-out PATH] [--timeseries-out PATH]
//       Run a multi-PoP fleet: anycast-routed per-PoP supervised services
//       streaming epoch-tagged partial aggregates to a central merger.
//       --kill-pop crashes PoP P mid-run and resumes it from its
//       checkpoint (coverage recovers); --lose-pop crashes it for good
//       (the merged report flags the affected epochs as degraded).
//       --timeseries-out writes the merger's `tamper-timeseries/1` dump
//       (fleet scope + per-PoP scopes).
//
//   tamperscope top [--pops N] [--connections N] [--seed S] [--frames N]
//                   [--interval MS] [--clear] [--state DIR] [--overload]
//       Live terminal dashboard over a seeded fleet campaign: every frame
//       shows merged totals, signature and country leaders, per-PoP health
//       (status / epoch / overload ladder level / shed), coverage, and the
//       fleet anomaly scan. Frame CONTENT is a pure function of (seed,
//       connections, pops, frame index) — wall time only paces rendering —
//       so frames are byte-comparable across runs. Plain scrolling output
//       by default; --clear redraws in place with ANSI clears.
//
//   tamperscope trends (--checkpoint PATH | PATH) [--json OUT] [--seed S]
//                      [--scope local|fleet|pop:<N>]
//       Offline query of the longitudinal trends history a checkpoint
//       carries (the epoch ring rides the versioned checkpoint): per-series
//       point counts and latest values, per-epoch coverage, and the
//       deterministic anomaly scan. --json writes the history as a
//       `tamper-timeseries/1` document whose scope is --scope (default
//       local; a PoP's checkpoint is its "pop:<N>" scope). A malformed
//       --kill-pop/--lose-pop/--scope id exits 4, distinct from usage (2)
//       and runtime (1) failures.
//
//   Common options: --log-level debug|info|warn|error, --log-format
//   text|json — structured logging on stderr (stdout stays the product).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "analysis/testlists.h"
#include "capture/sampler.h"
#include "common/ids.h"
#include "common/json.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_annotations.h"
#include "core/classifier.h"
#include "net/pcap.h"
#include "obs/anomaly.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "control/overload.h"
#include "fleet/fleet.h"
#include "service/checkpoint.h"
#include "service/shutdown.h"
#include "service/supervisor.h"
#include "world/traffic.h"

using namespace tamper;

namespace {

// Two-strike signal handling (service/shutdown.h): the first SIGINT/SIGTERM
// requests a clean drain — command loops poll ShutdownGuard::pending() and
// shut down cleanly (classify still prints its degraded summary, watch
// drains + checkpoints). A second signal during the drain force-exits
// immediately with 128 + sig. Exit codes follow the shell convention.
void install_signal_handlers() { service::ShutdownGuard::install(); }

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return options.contains(name);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[name] = argv[++i];
      } else {
        args.options[name] = "true";
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

/// Structured logger on stderr, shaped by --log-level and --log-format.
/// stdout stays reserved for the command's actual product (tables, JSON).
obs::Logger make_logger(const Args& args) {
  obs::LogLevel level = obs::LogLevel::kInfo;
  if (args.has("log-level") && !obs::parse_log_level(args.get("log-level"), &level))
    std::cerr << "warning: unknown --log-level '" << args.get("log-level")
              << "', using info\n";
  const obs::Logger::Format format = args.get("log-format") == "json"
                                         ? obs::Logger::Format::kJson
                                         : obs::Logger::Format::kText;
  return obs::Logger(std::cerr, level, format);
}

/// Temp-file + rename so a reader never sees a half-written snapshot and an
/// interrupted run still leaves the previous complete file behind.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Prometheus text at `path`, the JSON snapshot beside it at `path`.json.
bool write_metrics_files(obs::Registry& metrics, const std::string& path) {
  return write_file_atomic(path, metrics.prometheus_text()) &&
         write_file_atomic(path + ".json", metrics.json_text());
}

/// Periodic snapshot writer for `watch`: calls `flush` every `interval`
/// until stopped. The final flush after service shutdown is the caller's —
/// it must happen after stop() so the drained counters are on disk.
class SnapshotFlusher {
 public:
  SnapshotFlusher(std::function<void()> flush, std::chrono::milliseconds interval)
      : flush_(std::move(flush)), interval_(interval),
        thread_([this] { run(); }) {}
  ~SnapshotFlusher() { stop(); }

  void stop() {
    {
      common::MutexLock lock(mu_);
      if (done_) return;
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    common::UniqueLock lock(mu_);
    while (!done_) {
      cv_.wait_for(lock, interval_);
      if (done_) break;
      lock.unlock();
      flush_();
      lock.lock();
    }
  }

  std::function<void()> flush_;
  std::chrono::milliseconds interval_;
  common::Mutex mu_;
  std::condition_variable_any cv_;
  bool done_ TAMPER_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

int cmd_signatures() {
  common::TextTable table({"Signature", "ASCII name", "Stage", "Description"});
  const std::map<core::Signature, std::string> descriptions = {
      {core::Signature::kSynNone, "no packets after a single SYN"},
      {core::Signature::kSynRst, "one or more RSTs after a single SYN"},
      {core::Signature::kSynRstAck, "one or more RST+ACKs after the SYN"},
      {core::Signature::kSynRstRstAck, "RST and RST+ACK after a single SYN"},
      {core::Signature::kAckNone, "nothing after the handshake completes"},
      {core::Signature::kAckRst, "exactly one RST after SYN and ACK"},
      {core::Signature::kAckRstRst, "more than one RST after SYN and ACK"},
      {core::Signature::kAckRstAck, "exactly one RST+ACK after SYN and ACK"},
      {core::Signature::kAckRstAckRstAck, "more than one RST+ACK after SYN and ACK"},
      {core::Signature::kPshNone, "nothing after the first data packet"},
      {core::Signature::kPshRst, "exactly one RST"},
      {core::Signature::kPshRstAck, "exactly one RST+ACK"},
      {core::Signature::kPshRstRstAck, "at least one RST and one RST+ACK"},
      {core::Signature::kPshRstAckRstAck, "at least two RST+ACKs"},
      {core::Signature::kPshRstEqRst, ">1 RST, same ACK numbers"},
      {core::Signature::kPshRstNeqRst, ">1 RST, differing ACK numbers"},
      {core::Signature::kPshRstRst0, ">1 RST, one ACK number is zero"},
      {core::Signature::kDataRst, "RSTs not immediately after first data"},
      {core::Signature::kDataRstAck, "RST+ACKs not immediately after first data"},
  };
  for (core::Signature sig : core::all_signatures()) {
    table.add_row({std::string(core::name(sig)), std::string(core::ascii_name(sig)),
                   std::string(core::name(core::stage_of(sig))),
                   descriptions.at(sig)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_classify(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: tamperscope classify <capture.pcap> [--json] [--strict|--lenient]\n";
    return 2;
  }
  if (args.has("strict") && args.has("lenient")) {
    std::cerr << "classify: --strict and --lenient are mutually exclusive\n";
    return 2;
  }
  std::ifstream in(args.positional[0], std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open " << args.positional[0] << '\n';
    return 1;
  }
  // Lenient by default: a capture from a hostile tap should degrade, not
  // die. --strict turns any corruption into a hard failure.
  const bool strict = args.has("strict");
  obs::Logger logger = make_logger(args);
  const std::string metrics_path = args.get("metrics-out");
  const std::string trace_path = args.get("trace-out");
  obs::Registry metrics;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty())
    tracer = std::make_unique<obs::Tracer>(obs::monotonic_clock());

  capture::ConnectionSampler::Config config;
  config.sample_one_in = 1;
  capture::ConnectionSampler sampler(config);
  net::PcapReader reader(in, strict ? net::PcapReadMode::kStrict
                                    : net::PcapReadMode::kLenient);
  if (!reader.ok()) {
    logger.error("classify", "cannot read capture",
                 {{"path", args.positional[0]}, {"error", reader.error()}});
    return 1;
  }
  install_signal_handlers();
  double last_ts = 0.0;
  bool interrupted = false;
  {
    obs::Tracer::Span sample_span(tracer.get(), obs::stage::kSample,
                                  obs::stage::kCategory);
    while (auto pkt = reader.next()) {
      if (service::ShutdownGuard::requested()) {
        // Stop reading but keep going: classify what we have, report the
        // degradation honestly, then exit with the conventional signal code.
        interrupted = true;
        break;
      }
      last_ts = std::max(last_ts, pkt->timestamp);  // hostile clocks can regress
      sampler.on_packet(*pkt, pkt->timestamp);
    }
  }
  const auto samples = sampler.flush_all(last_ts + 60.0);
  if (interrupted)
    logger.warn("classify", "interrupted; classifying the flows read so far",
                {{"signal", std::to_string(service::ShutdownGuard::pending())},
                 {"flows", std::to_string(samples.size())}});

  const net::PcapReader::Stats& rs = reader.stats();
  const capture::ConnectionSampler::Stats& ss = sampler.stats();

  // Mirror the capture-side counters into the registry so --metrics-out
  // reflects reader + sampler health with the same names watch exposes.
  metrics.counter("tamper_reader_frames_total", "Frames read from the capture")
      .increment_to(rs.frames_read);
  auto& skipped = metrics.counter_family("tamper_reader_skipped_total",
                                         "Frames the reader skipped", {"reason"});
  skipped.with({"unparseable"}).increment_to(rs.skipped_unparseable);
  skipped.with({"oversize"}).increment_to(rs.skipped_oversize);
  skipped.with({"truncated"}).increment_to(rs.skipped_truncated);
  metrics.counter("tamper_reader_resyncs_total", "Successful record resyncs")
      .increment_to(rs.resyncs);
  metrics
      .counter("tamper_reader_resync_failures_total",
               "Resync scans that found no plausible header")
      .increment_to(rs.resync_failures);
  metrics.counter("tamper_sampler_packets_total", "Packets offered to the sampler")
      .increment_to(ss.packets_seen);
  metrics
      .counter("tamper_sampler_malformed_total",
               "Hostile/garbage packets dropped before flow lookup")
      .increment_to(ss.packets_malformed);
  metrics
      .counter("tamper_sampler_evicted_total",
               "Flows force-closed at the max_flows overload limit")
      .increment_to(ss.flows_evicted_overload);
  metrics.counter("tamper_sampler_connections_total", "Connections assembled")
      .increment_to(ss.connections_seen);
  metrics.counter("tamper_sampler_sampled_total", "Connections sampled")
      .increment_to(ss.connections_sampled);

  const std::uint64_t degraded = reader.frames_skipped() + ss.packets_malformed +
                                 ss.flows_evicted_overload + rs.resync_failures;
  if (degraded > 0) {
    // One summary line, always on stderr, so scripted users see skew.
    logger.warn("classify", "degraded input",
                {{"oversize", std::to_string(rs.skipped_oversize)},
                 {"truncated", std::to_string(rs.skipped_truncated)},
                 {"unparseable", std::to_string(rs.skipped_unparseable)},
                 {"resyncs", std::to_string(rs.resyncs)},
                 {"resync_failures", std::to_string(rs.resync_failures)},
                 {"malformed_packets", std::to_string(ss.packets_malformed)},
                 {"overload_evicted", std::to_string(ss.flows_evicted_overload)}});
    if (strict) {
      logger.error("classify", "corrupt capture (strict mode)");
      return 1;
    }
  }
  if (rs.frames_read == 0) {
    logger.error("classify", "no parseable frames in capture",
                 {{"path", args.positional[0]}});
    return 1;
  }

  // Observability outputs are written on every exit path past this point.
  const auto flush_obs = [&](std::uint64_t flows) {
    metrics.counter("tamper_classify_flows_total", "Flows classified")
        .increment_to(flows);
    if (!metrics_path.empty() && !write_metrics_files(metrics, metrics_path))
      logger.warn("classify", "metrics write failed", {{"path", metrics_path}});
    if (tracer && !write_file_atomic(trace_path, tracer->chrome_json()))
      logger.warn("classify", "trace write failed", {{"path", trace_path}});
  };

  core::SignatureClassifier classifier;
  if (args.has("json")) {
    obs::Tracer::Span classify_span(tracer.get(), obs::stage::kClassify,
                                    obs::stage::kCategory);
    common::JsonWriter json(std::cout);
    json.begin_array();
    for (const auto& sample : samples) {
      const auto verdict = classifier.classify(sample);
      json.begin_object();
      json.kv("client", sample.client_ip.to_string() + ":" +
                            std::to_string(sample.client_port));
      json.kv("server", sample.server_ip.to_string() + ":" +
                            std::to_string(sample.server_port));
      json.kv("packets", static_cast<std::uint64_t>(sample.packets.size()));
      json.kv("possibly_tampered", verdict.possibly_tampered);
      if (verdict.signature)
        json.kv("signature", core::ascii_name(*verdict.signature));
      else
        json.key("signature").null();
      json.kv("stage", core::name(verdict.stage));
      json.end_object();
    }
    json.end_array();
    std::cout << '\n';
    classify_span.finish();
    flush_obs(samples.size());
    return interrupted ? 128 + service::ShutdownGuard::pending() : 0;
  }

  common::LabelCounter verdicts;
  {
    obs::Tracer::Span classify_span(tracer.get(), obs::stage::kClassify,
                                    obs::stage::kCategory);
    for (const auto& sample : samples) {
      const auto verdict = classifier.classify(sample);
      verdicts.add(verdict.signature
                       ? std::string(core::name(*verdict.signature))
                       : (verdict.possibly_tampered ? "(possibly tampered, unmatched)"
                                                    : "Not Tampering"));
    }
  }
  std::cout << "frames: " << reader.frames_read() << ", flows: " << samples.size()
            << "\n\n";
  common::TextTable table({"Verdict", "Flows"});
  for (const auto& [label, count] : verdicts.top(32))
    table.add_row({label, common::TextTable::num(count)});
  table.print(std::cout);
  flush_obs(samples.size());
  return interrupted ? 128 + service::ShutdownGuard::pending() : 0;
}

int cmd_simulate(const Args& args) {
  const std::uint64_t connections = args.get_u64("connections", 100'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = seed ^ 0x51;
  analysis::Pipeline pipeline(world);

  std::ofstream pcap_out;
  std::unique_ptr<net::PcapWriter> pcap;
  if (args.has("pcap")) {
    pcap_out.open(args.get("pcap"), std::ios::binary);
    if (!pcap_out) {
      std::cerr << "cannot open " << args.get("pcap") << " for writing\n";
      return 1;
    }
    pcap = std::make_unique<net::PcapWriter>(pcap_out);
    traffic.keep_raw_inbound = true;
  }
  world::TrafficGenerator generator(world, traffic);

  generator.generate(connections, [&](world::LabeledConnection&& conn) {
    pipeline.ingest(conn.sample);
    if (pcap && conn.truth.tampered) {
      for (const auto& pkt : conn.raw_inbound) pcap->write(pkt);
    }
  });

  const auto& matrix = pipeline.signatures();
  std::cout << "connections:       " << matrix.total_connections() << '\n'
            << "possibly tampered: "
            << common::TextTable::pct(
                   common::percent(matrix.possibly_tampered(), matrix.total_connections()))
            << '\n'
            << "signature matches: "
            << common::TextTable::pct(
                   common::percent(matrix.matched(), matrix.total_connections()))
            << "\n\n";
  common::TextTable table({"Country", "Connections", "Match %"});
  for (const auto& cc : matrix.countries()) {
    if (cc == "??" || matrix.country_connections(cc) < 500) continue;
    table.add_row({cc, common::TextTable::num(matrix.country_connections(cc)),
                   common::TextTable::pct(common::percent(
                       matrix.country_matches(cc), matrix.country_connections(cc)))});
  }
  table.print(std::cout);

  if (args.has("json")) {
    std::ofstream json_out(args.get("json"));
    if (!json_out) {
      std::cerr << "cannot open " << args.get("json") << " for writing\n";
      return 1;
    }
    analysis::write_radar_report(json_out, pipeline);
    std::cout << "\nJSON report written to " << args.get("json") << '\n';
  }
  if (pcap) {
    std::cout << "tampered-connection pcap written to " << args.get("pcap") << " ("
              << pcap->packets_written() << " packets)\n";
  }
  return 0;
}

int cmd_testlists(const Args& args) {
  const std::string region = args.get("region", "CN");
  const std::uint64_t connections = args.get_u64("connections", 150'000);

  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 0x7e57;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);
  pipeline.run(generator, connections);

  const std::uint64_t threshold = std::max<std::uint64_t>(2, connections / 150'000);
  const auto observed = pipeline.categories().tampered_domains(region, threshold);
  std::cout << "region " << region << ": " << observed.size()
            << " passively observed tampered domains\n\n";
  if (observed.empty()) return 0;

  analysis::TestListBuilder builder(world, 0x5eed);
  common::TextTable table({"List", "#Entries", "Exact", "Substring"});
  for (const auto& list : builder.standard_battery()) {
    const analysis::Coverage c = analysis::audit_coverage(list, observed);
    table.add_row({list.name, common::TextTable::num(std::uint64_t{list.entries.size()}),
                   common::TextTable::pct(c.exact_pct()),
                   common::TextTable::pct(c.substring_pct())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_watch(const Args& args) {
  const std::uint64_t connections = args.get_u64("connections", 200'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string report_path = args.get("report", "tamperscope-report.json");
  const std::string metrics_path = args.get("metrics-out");
  const std::string trace_path = args.get("trace-out");
  const std::string timeseries_path = args.get("timeseries-out");
  obs::Logger logger = make_logger(args);

  obs::Registry metrics;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty()) {
    obs::Tracer::Config trace_cfg;
    trace_cfg.capacity = args.get_u64("trace-capacity", 4096);
    tracer = std::make_unique<obs::Tracer>(obs::monotonic_clock(), trace_cfg);
  }

  service::ServiceConfig cfg;
  cfg.checkpoint_path = args.get("checkpoint");
  cfg.checkpoint_every_samples = args.get_u64("checkpoint-every", 5000);
  cfg.report_every_samples = args.get_u64("report-every", 0);
  cfg.queue_capacity = args.get_u64("queue", 4096);
  cfg.queue_policy = args.has("shed") ? common::QueuePolicy::kShed
                                      : common::QueuePolicy::kBlock;
  cfg.metrics = &metrics;
  cfg.tracer = tracer.get();
  cfg.logger = &logger;
  cfg.trends.epoch_length_sec =
      static_cast<std::int64_t>(args.get_u64("epoch-sec", 3600));
  if (args.has("overload")) {
    cfg.overload.enabled = true;
    cfg.overload.admit_rate_per_sec =
        static_cast<double>(args.get_u64("admit-rate", 0));
    cfg.overload.admit_burst = static_cast<double>(args.get_u64("admit-burst", 0));
  }

  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = seed ^ 0x51;
  world::TrafficGenerator generator(world, traffic);

  service::FileSink sink(report_path);
  service::ReportEmitter emitter(sink, service::RetryPolicy{}, args.get("spool"),
                                 seed ^ 0x3e9d);
  service::SupervisedService svc(world, cfg, &emitter);

  const auto resume = args.has("fresh") ? service::SupervisedService::Resume::kFresh
                                        : service::SupervisedService::Resume::kResumeOrFresh;
  if (!svc.start(resume)) {
    // A corrupt checkpoint is refused, never silently discarded: state loss
    // must be an explicit operator decision (--fresh).
    logger.error("watch", "service refused to start", {{"error", svc.error()}});
    logger.info("watch", "pass --fresh to discard the checkpoint and start over");
    return 1;
  }

  // Periodic observability snapshots; the final flush after stop() (below)
  // runs even on SIGTERM-drain so a partial run still leaves a complete
  // Prometheus file and a Perfetto-loadable trace behind.
  const auto flush_snapshots = [&] {
    if (!metrics_path.empty() && !write_metrics_files(metrics, metrics_path))
      logger.warn("watch", "metrics snapshot write failed", {{"path", metrics_path}});
    if (tracer && !write_file_atomic(trace_path, tracer->chrome_json()))
      logger.warn("watch", "trace write failed", {{"path", trace_path}});
  };
  std::unique_ptr<SnapshotFlusher> flusher;
  if (!metrics_path.empty() || tracer)
    flusher = std::make_unique<SnapshotFlusher>(
        flush_snapshots,
        std::chrono::milliseconds(args.get_u64("metrics-interval", 1000)));

  install_signal_handlers();
  std::uint64_t submitted = 0;
  // Direct generate_one loop (not generator.generate) so a signal stops
  // the offered load immediately instead of discarding the remainder of a
  // large --connections run one connection at a time.
  for (std::uint64_t i = 0; i < connections; ++i) {
    if (service::ShutdownGuard::requested() || svc.failed()) break;
    if (svc.submit(generator.generate_one().sample)) ++submitted;
  }

  const bool interrupted = service::ShutdownGuard::requested();
  if (interrupted)
    logger.warn("watch", "signal received; draining queue, writing final checkpoint + report",
                {{"signal", std::to_string(service::ShutdownGuard::pending())}});
  const service::RunSummary s = svc.stop();
  if (flusher) flusher->stop();
  flush_snapshots();
  if (!metrics_path.empty())
    logger.info("watch", "final metrics snapshot written",
                {{"prometheus", metrics_path}, {"json", metrics_path + ".json"}});
  if (tracer)
    logger.info("watch", "trace written",
                {{"path", trace_path},
                 {"events", std::to_string(tracer->size())},
                 {"dropped", std::to_string(tracer->dropped())}});

  // The worker is joined (stop() above), so the pipeline's epoch ring and
  // the watchdog's last scan are stable to read from this thread.
  if (!timeseries_path.empty()) {
    obs::TimeseriesScope scope;
    scope.name = "local";
    scope.ring = &svc.pipeline().trends();
    scope.anomalies = svc.anomalies().events;
    std::ostringstream ts;
    obs::write_timeseries_json(ts, {scope},
                               svc.pipeline().trends().config().epoch_length_sec);
    if (!write_file_atomic(timeseries_path, ts.str()))
      logger.warn("watch", "timeseries write failed", {{"path", timeseries_path}});
    else
      logger.info("watch", "timeseries written",
                  {{"path", timeseries_path},
                   {"series", std::to_string(svc.pipeline().trends().series().size())},
                   {"anomalies", std::to_string(svc.anomalies().events.size())}});
  }

  std::cout << "ingested:      " << s.ingested
            << (s.restored ? " (" + std::to_string(s.restored_samples) + " restored from checkpoint)"
                           : std::string())
            << '\n'
            << "submitted:     " << submitted << '\n'
            << "checkpoints:   " << s.checkpoints_written << " written, "
            << s.checkpoint_failures << " failed\n"
            << "reports:       " << s.reports_emitted << " emitted -> " << sink.describe()
            << '\n'
            << "queue:         " << s.queue.pushed << " pushed, " << s.queue.shed_total()
            << " shed (" << s.queue.shed_low_value << " embryonic), " << s.queue.push_waits
            << " producer waits\n"
            << "supervision:   " << s.worker_crashes << " crashes, " << s.worker_restarts
            << " restarts, " << s.stalls_detected << " stalls\n";
  if (args.has("overload")) {
    const control::OverloadStats& o = s.overload;
    std::cout << "overload:      level " << control::name(o.level) << " (peak "
              << control::name(o.peak_level) << "), " << o.offered << " offered, "
              << o.admitted << " admitted, " << o.shed_total() << " shed ("
              << o.rate_limited << " rate-limited, " << o.sampled_down
              << " sampled down, " << o.embryonic_shed << " embryonic, "
              << o.rejected << " rejected)\n"
              << "backpressure:  " << o.escalations << " escalations, "
              << o.deescalations << " de-escalations, " << o.breaker_trips
              << " breaker trips, " << o.reports_skipped << " reports skipped\n";
  }
  if (s.failed) {
    logger.error("watch", "service failed", {{"error", s.failure}});
    return 1;
  }
  return interrupted ? 128 + service::ShutdownGuard::pending() : 0;
}

/// Exit code for an identifier that fails the id grammar or names nothing
/// (an out-of-range PoP, an unknown scope) — distinct from 2 (usage error)
/// and 1 (runtime/I-O failure), so scripts can tell a typo'd id apart from
/// a broken run.
constexpr int kExitUnknownId = 4;

/// Validate a --kill-pop/--lose-pop value against the fleet size. Accepts
/// a bare number or the rendered "pop:<N>" form. The old strtoull path read
/// junk as PoP 0 and indexed out-of-range ids straight past the PoP vector.
std::optional<common::PopId> parse_pop_option(const Args& args,
                                              const std::string& name,
                                              std::uint32_t pops,
                                              obs::Logger& logger) {
  const std::string text = args.get(name);
  const auto pop = common::parse_id<common::PopId>(text);
  if (!pop) {
    logger.error("fleet", "unparseable PoP id (want a number or pop:<N>)",
                 {{"option", "--" + name}, {"value", text}});
    return std::nullopt;
  }
  if (pop->value() >= pops) {
    logger.error("fleet", "unknown PoP",
                 {{"option", "--" + name},
                  {"value", common::format(*pop)},
                  {"pops", std::to_string(pops)}});
    return std::nullopt;
  }
  return pop;
}

int cmd_fleet(const Args& args) {
  const std::uint64_t connections = args.get_u64("connections", 20'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const auto pops = static_cast<std::uint32_t>(args.get_u64("pops", 3));
  const std::string state_dir = args.get("state", "tamperscope-fleet");
  const std::string report_path = args.get("report", "tamperscope-fleet.json");
  const std::string metrics_path = args.get("metrics-out");
  obs::Logger logger = make_logger(args);

  // Chaos ids are validated up front: a typo must fail before the run, not
  // crash (or silently hit PoP 0) halfway through it.
  std::optional<common::PopId> kill_pop, lose_pop;
  if (args.has("kill-pop")) {
    kill_pop = parse_pop_option(args, "kill-pop", pops, logger);
    if (!kill_pop) return kExitUnknownId;
  }
  if (args.has("lose-pop")) {
    lose_pop = parse_pop_option(args, "lose-pop", pops, logger);
    if (!lose_pop) return kExitUnknownId;
  }

  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = seed ^ 0x51;
  world::TrafficGenerator generator(world, traffic);

  // Feed in timestamp order so each PoP's epoch (derived from its latest
  // observed timestamp) advances monotonically — the generator jitters.
  std::vector<capture::ConnectionSample> samples;
  samples.reserve(connections);
  for (std::uint64_t i = 0; i < connections; ++i)
    samples.push_back(generator.generate_one().sample);
  std::stable_sort(samples.begin(), samples.end(),
                   [](const capture::ConnectionSample& a,
                      const capture::ConnectionSample& b) {
                     return a.observation_end_sec < b.observation_end_sec;
                   });

  fleet::FleetConfig fc;
  fc.pops = pops;
  fc.seed = seed;
  fc.state_dir = state_dir;
  fc.report_every_samples = args.get_u64("report-every", 2000);
  fc.checkpoint_every_samples = args.get_u64("checkpoint-every", 1000);
  // Declared before the Fleet: the merger unregisters its collector on
  // destruction, so the registry must outlive it.
  obs::Registry merger_metrics;
  fleet::Fleet fleet(world, fc);
  fleet.merger().set_obs(&merger_metrics);

  std::uint64_t submitted = 0, unobserved = 0;
  for (std::uint64_t i = 0; i < samples.size(); ++i) {
    if (i == samples.size() / 2) {
      if (kill_pop) {
        fleet.kill_pop(*kill_pop);
        const bool resumed = fleet.restart_pop(*kill_pop);
        logger.info("fleet", resumed ? "PoP killed and resumed from checkpoint"
                                     : "PoP killed; restart FAILED",
                    {{"pop", common::format(*kill_pop)}});
      }
      if (lose_pop) {
        fleet.kill_pop(*lose_pop);
        fleet.withdraw_pop(*lose_pop);
        logger.warn("fleet", "PoP lost for good; anycast withdrawn",
                    {{"pop", common::format(*lose_pop)}});
      }
    }
    if (fleet.submit(samples[i]))
      ++submitted;
    else
      ++unobserved;
  }
  const auto summaries = fleet.stop();

  if (!write_file_atomic(report_path, fleet.merger().merged_report())) {
    logger.error("fleet", "cannot write merged report", {{"path", report_path}});
    return 1;
  }
  if (!metrics_path.empty() && !write_metrics_files(merger_metrics, metrics_path))
    logger.warn("fleet", "metrics snapshot write failed", {{"path", metrics_path}});
  const std::string timeseries_path = args.get("timeseries-out");
  if (!timeseries_path.empty()) {
    if (!write_file_atomic(timeseries_path, fleet.merger().timeseries_dump()))
      logger.warn("fleet", "timeseries write failed", {{"path", timeseries_path}});
    else
      std::cout << "fleet timeseries: " << timeseries_path << '\n';
  }

  const analysis::FleetCoverage coverage = fleet.merger().coverage();
  const fleet::Merger::Stats ms = fleet.merger().stats();
  std::cout << "fleet:        " << pops << " PoPs, " << submitted << " samples routed";
  if (unobserved > 0) std::cout << ", " << unobserved << " unobserved";
  std::cout << '\n';
  common::TextTable table({"PoP", "Status", "Last epoch", "Samples", "Crashes"});
  for (const auto& pop : coverage.pops) {
    const service::RunSummary& s = summaries[pop.pop.value()];
    table.add_row({common::format(pop.pop), pop.status,
                   common::TextTable::num(pop.last_epoch.value()),
                   common::TextTable::num(pop.samples),
                   common::TextTable::num(s.worker_crashes)});
  }
  table.print(std::cout);
  std::cout << "merger:       " << ms.accepted << " partials merged (" << ms.received
            << " received, " << ms.duplicates << " duplicate, " << ms.stale
            << " stale, " << ms.late << " late, " << ms.rejected << " rejected)\n"
            << "coverage:     " << coverage.pops_reporting << "/"
            << coverage.pops_expected << " PoPs reporting, watermark epoch "
            << coverage.watermark << (coverage.degraded ? " [DEGRADED]" : "") << '\n'
            << "merged report: " << report_path << '\n';
  return 0;
}

/// One `top` frame: pure function of the merger's current partial set (and
/// the frame/offered counters), so equal seeds render equal frames.
void render_top_frame(const fleet::Merger& merger, std::uint64_t frame,
                      std::uint64_t frames, std::uint64_t offered,
                      std::uint64_t total) {
  const auto merged = merger.merged_pipeline();
  const analysis::FleetCoverage cov = merger.coverage();
  const fleet::Merger::FleetTrends trends = merger.fleet_trends(*merged, cov);
  const auto& matrix = merged->signatures();

  std::cout << "tamperscope top — frame " << frame << "/" << frames << ", "
            << offered << "/" << total << " samples offered\n"
            << "merged:    " << matrix.total_connections()
            << " connections, possibly tampered "
            << common::TextTable::pct(common::percent(matrix.possibly_tampered(),
                                                      matrix.total_connections()))
            << ", signature matched "
            << common::TextTable::pct(
                   common::percent(matrix.matched(), matrix.total_connections()))
            << '\n'
            << "coverage:  " << cov.pops_reporting << "/" << cov.pops_expected
            << " PoPs reporting, watermark epoch " << cov.watermark
            << (cov.degraded ? " [DEGRADED]" : "") << ", anomalies: "
            << trends.scan.events.size();
  if (!trends.scan.events.empty()) {
    const obs::AnomalyEvent& last = trends.scan.events.back();
    std::cout << " (last: " << last.family
              << (last.label.empty() ? "" : "{" + last.label + "}") << " @ epoch "
              << last.epoch << ")";
  }
  std::cout << "\n\n";

  // Signature leaders (by matched connections).
  std::vector<std::pair<std::string, std::uint64_t>> sigs;
  for (core::Signature sig : core::all_signatures()) {
    const std::uint64_t n = matrix.signature_total(sig);
    if (n > 0) sigs.emplace_back(std::string(core::name(sig)), n);
  }
  std::stable_sort(sigs.begin(), sigs.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sigs.size() > 5) sigs.resize(5);
  common::TextTable sig_table({"Top signature", "Matches"});
  for (const auto& [name, n] : sigs)
    sig_table.add_row({name, common::TextTable::num(n)});
  sig_table.print(std::cout);

  // Country leaders (by matched connections; ties broken by country code).
  std::vector<std::pair<std::string, std::uint64_t>> countries;
  for (const std::string& cc : matrix.countries()) {
    const std::uint64_t n = matrix.country_matches(cc);
    if (n > 0) countries.emplace_back(cc, n);
  }
  std::stable_sort(countries.begin(), countries.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (countries.size() > 5) countries.resize(5);
  common::TextTable cc_table({"Top country", "Matches", "Connections"});
  for (const auto& [cc, n] : countries)
    cc_table.add_row({cc, common::TextTable::num(n),
                      common::TextTable::num(matrix.country_connections(cc))});
  cc_table.print(std::cout);

  common::TextTable pop_table({"PoP", "Status", "Last epoch", "Samples",
                               "Overload", "Shed"});
  for (const analysis::FleetPopStatus& pop : cov.pops)
    pop_table.add_row({common::format(pop.pop), pop.status,
                       common::TextTable::num(pop.last_epoch.value()),
                       common::TextTable::num(pop.samples), pop.overload,
                       common::TextTable::num(pop.shed_samples)});
  pop_table.print(std::cout);
  std::cout << std::flush;
}

int cmd_top(const Args& args) {
  const std::uint64_t connections = args.get_u64("connections", 20'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const auto pops = static_cast<std::uint32_t>(args.get_u64("pops", 3));
  const std::uint64_t frames = std::max<std::uint64_t>(1, args.get_u64("frames", 8));
  const std::uint64_t interval_ms = args.get_u64("interval", 0);
  const bool clear = args.has("clear");
  const std::string state_dir = args.get("state", "tamperscope-top");

  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = seed ^ 0x51;
  world::TrafficGenerator generator(world, traffic);

  // Same timestamp-ordered feed as `fleet`, so PoP epochs advance
  // monotonically and frames at equal offsets see equal merged state.
  std::vector<capture::ConnectionSample> samples;
  samples.reserve(connections);
  for (std::uint64_t i = 0; i < connections; ++i)
    samples.push_back(generator.generate_one().sample);
  std::stable_sort(samples.begin(), samples.end(),
                   [](const capture::ConnectionSample& a,
                      const capture::ConnectionSample& b) {
                     return a.observation_end_sec < b.observation_end_sec;
                   });

  fleet::FleetConfig fc;
  fc.pops = pops;
  fc.seed = seed;
  fc.state_dir = state_dir;
  fc.report_every_samples = args.get_u64("report-every", 1000);
  fc.checkpoint_every_samples = args.get_u64("checkpoint-every", 500);
  if (args.has("overload")) {
    fc.overload.enabled = true;
    fc.overload.admit_rate_per_sec =
        static_cast<double>(args.get_u64("admit-rate", 0));
    fc.overload.admit_burst = static_cast<double>(args.get_u64("admit-burst", 0));
  }
  obs::Registry merger_metrics;
  fleet::Fleet fleet(world, fc);
  fleet.merger().set_obs(&merger_metrics);
  install_signal_handlers();

  const std::uint64_t chunk = (samples.size() + frames - 1) / frames;
  std::uint64_t offered = 0;
  bool interrupted = false;
  for (std::uint64_t f = 0; f < frames && offered < samples.size(); ++f) {
    const std::uint64_t end =
        std::min<std::uint64_t>(samples.size(), offered + chunk);
    for (; offered < end; ++offered) (void)fleet.submit(samples[offered]);
    // Quiesce every PoP: partials are emitted synchronously at report
    // boundaries by each worker, so after this the merged state is the pure
    // function of the feed position the frame claims to show.
    for (std::uint32_t p = 0; p < pops; ++p) fleet.quiesce_pop(common::PopId(p));
    if (clear) std::cout << "\x1b[2J\x1b[H";
    render_top_frame(fleet.merger(), f + 1, frames, offered, samples.size());
    if (service::ShutdownGuard::requested()) {
      interrupted = true;
      break;
    }
    if (interval_ms > 0 && offered < samples.size())
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  (void)fleet.stop();
  return interrupted ? 128 + service::ShutdownGuard::pending() : 0;
}

int cmd_trends(const Args& args) {
  std::string path = args.get("checkpoint");
  if (path.empty() && !args.positional.empty()) path = args.positional[0];
  if (path.empty()) {
    std::cerr << "usage: tamperscope trends (--checkpoint PATH | PATH) [--json OUT]\n"
                 "                          [--scope local|fleet|pop:<N>] [--seed S]\n";
    return 2;
  }
  const std::uint64_t seed = args.get_u64("seed", 42);
  obs::Logger logger = make_logger(args);

  // --scope labels the emitted timeseries scope (a checkpoint from a fleet
  // PoP is "pop:<N>", a monolith's is "local"). Validate the grammar up
  // front so a typo fails before the checkpoint is even opened.
  common::ScopeName scope_name;  // default: local
  if (args.has("scope")) {
    const auto parsed = common::parse_scope(args.get("scope"));
    if (!parsed) {
      logger.error("trends", "unknown scope (want local, fleet, or pop:<N>)",
                   {{"value", args.get("scope")}});
      return kExitUnknownId;
    }
    scope_name = *parsed;
  }

  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  world::World world(world_cfg);
  analysis::Pipeline pipeline(world);
  const service::LoadResult loaded = service::load_checkpoint(path, pipeline);
  if (!loaded.ok) {
    logger.error("trends", "cannot load checkpoint",
                 {{"path", path}, {"error", loaded.error}});
    return 1;
  }

  const obs::EpochRing& ring = pipeline.trends();
  if (ring.empty()) {
    std::cout << "checkpoint " << path << ": " << loaded.meta.samples_ingested
              << " samples ingested, no trend history (the service never "
                 "crossed a checkpoint/report boundary)\n";
    return 0;
  }

  // Re-derive the anomaly scan the resident watchdog would publish — the
  // scan is a pure function of the ring, so offline and online agree.
  const std::set<std::int64_t> degraded =
      obs::epochs_where_rising(ring, "degraded");
  const obs::AnomalyScan scan = obs::scan_anomalies(
      ring, obs::default_series_catalog(), obs::AnomalyConfig{}, degraded);

  std::cout << "checkpoint: " << path << " (" << loaded.meta.samples_ingested
            << " samples ingested, sequence " << loaded.meta.sequence << ")\n"
            << "history:    epochs " << ring.min_epoch() << ".." << ring.max_epoch()
            << " (" << ring.config().epoch_length_sec << " s each), "
            << ring.series().size() << " series, " << ring.point_count()
            << " points (" << ring.dropped_points() << " dropped)\n"
            << "anomalies:  " << scan.events.size() << " event(s), "
            << scan.points_scanned << " deltas scanned, "
            << scan.suppressed_degraded << " suppressed degraded, "
            << scan.suppressed_gap << " suppressed gap\n\n";

  common::TextTable table({"Series", "Points", "Last epoch", "Last value"});
  std::size_t rows = 0;
  for (const auto& [key, data] : ring.series()) {
    if (++rows > 32) break;  // ring cardinality is bounded, but keep it scannable
    const auto last = data.points.rbegin();
    std::ostringstream value;
    value << last->second;
    table.add_row({key.label.empty() ? key.family
                                     : key.family + "{" + key.label + "}",
                   common::TextTable::num(std::uint64_t{data.points.size()}),
                   common::TextTable::num(static_cast<std::uint64_t>(last->first)),
                   value.str()});
  }
  table.print(std::cout);
  if (ring.series().size() > 32)
    std::cout << "(" << ring.series().size() - 32 << " more series; use --json for all)\n";

  if (!scan.events.empty()) {
    std::cout << '\n';
    common::TextTable anomalies({"Anomaly", "Epoch", "Delta", "Expected", "Score"});
    for (const obs::AnomalyEvent& e : scan.events) {
      std::ostringstream delta, expected, score;
      delta << e.delta;
      expected << e.expected;
      score << e.score;
      anomalies.add_row({e.label.empty() ? e.family : e.family + "{" + e.label + "}",
                         common::TextTable::num(static_cast<std::uint64_t>(e.epoch)),
                         delta.str(), expected.str(), score.str()});
    }
    anomalies.print(std::cout);
  }

  if (args.has("json")) {
    obs::TimeseriesScope scope;
    scope.name = scope_name.str();
    scope.ring = &ring;
    scope.anomalies = scan.events;
    std::ostringstream ts;
    obs::write_timeseries_json(ts, {scope}, ring.config().epoch_length_sec);
    const std::string out_path = args.get("json");
    if (!write_file_atomic(out_path, ts.str())) {
      logger.error("trends", "cannot write timeseries", {{"path", out_path}});
      return 1;
    }
    std::cout << "\ntimeseries written to " << out_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  const Args args = parse_args(argc, argv);
  try {
    if (command == "signatures") return cmd_signatures();
    if (command == "classify") return cmd_classify(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "testlists") return cmd_testlists(args);
    if (command == "watch") return cmd_watch(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "top") return cmd_top(args);
    if (command == "trends") return cmd_trends(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "usage: tamperscope <signatures|classify|simulate|testlists|watch|fleet|top|trends> [options]\n"
               "  signatures                         print the Table 1 taxonomy\n"
               "  classify <pcap> [--json] [--strict|--lenient]\n"
               "           [--metrics-out PATH] [--trace-out PATH]\n"
               "                                     classify flows from a capture\n"
               "                                     (lenient default: skip corrupt records,\n"
               "                                     print a degraded-input summary; strict:\n"
               "                                     exit 1 on any corruption)\n"
               "  simulate [--connections N] [--seed S] [--json out.json] [--pcap out.pcap]\n"
               "  testlists [--region CC] [--connections N]\n"
               "  watch [--connections N] [--seed S] [--checkpoint FILE] [--fresh]\n"
               "        [--report out.json] [--spool DIR] [--queue N] [--shed]\n"
               "        [--checkpoint-every N] [--report-every N]\n"
               "        [--metrics-out PATH] [--metrics-interval MS] [--trace-out PATH]\n"
               "        [--overload] [--admit-rate N] [--admit-burst N]\n"
               "        [--timeseries-out PATH] [--epoch-sec N]\n"
               "                                     run the pipeline as a supervised\n"
               "                                     streaming service; SIGINT/SIGTERM drain,\n"
               "                                     checkpoint, and emit a final report (a\n"
               "                                     second signal force-exits with 128+sig);\n"
               "                                     --overload enables admission control +\n"
               "                                     the degradation ladder;\n"
               "                                     --metrics-out writes Prometheus text +\n"
               "                                     PATH.json snapshots, --trace-out a\n"
               "                                     Perfetto-loadable stage trace\n"
               "  fleet [--pops N] [--connections N] [--seed S] [--state DIR]\n"
               "        [--report out.json] [--report-every N] [--checkpoint-every N]\n"
               "        [--kill-pop P] [--lose-pop P] [--metrics-out PATH]\n"
               "        [--timeseries-out PATH]\n"
               "                                     run N anycast-routed PoP services\n"
               "                                     streaming epoch-tagged partials to a\n"
               "                                     central merger; --kill-pop crashes and\n"
               "                                     resumes PoP P mid-run, --lose-pop\n"
               "                                     crashes it for good (merged report\n"
               "                                     flags degraded epochs);\n"
               "                                     --timeseries-out dumps the merger's\n"
               "                                     tamper-timeseries/1 document\n"
               "  top [--pops N] [--connections N] [--seed S] [--frames N]\n"
               "      [--interval MS] [--clear] [--state DIR] [--overload]\n"
               "                                     live dashboard over a seeded fleet\n"
               "                                     campaign: merged totals, signature and\n"
               "                                     country leaders, PoP health + overload\n"
               "                                     ladder, coverage, anomaly scan; frame\n"
               "                                     content is deterministic per seed\n"
               "  trends (--checkpoint PATH | PATH) [--json OUT] [--seed S]\n"
               "         [--scope local|fleet|pop:<N>]\n"
               "                                     offline query of the trend history a\n"
               "                                     checkpoint carries: series, coverage,\n"
               "                                     anomaly scan; --json writes the\n"
               "                                     tamper-timeseries/1 document, --scope\n"
               "                                     labels it (a PoP checkpoint is pop:<N>)\n"
               "  common: --log-level debug|info|warn|error, --log-format text|json\n";
  return command.empty() ? 2 : 1;
}
