// tamperlint — run the repo's contract lint (see src/lint/lint.h for the
// rule catalog). Exit status: 0 clean, 1 findings, 2 usage or I/O error.
//
// The gate form pins file discovery to a checked-in manifest and filters
// accepted pre-existing findings through a baseline:
//
//   tamperlint --root . --manifest tools/tamperlint.manifest
//              --verify-manifest --baseline tools/tamperlint.baseline
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lint.h"

namespace {

constexpr const char* kUsage = R"(usage: tamperlint [options] [path...]

Runs libtamper's contract lint over C++ sources: per-file rules R0-R6 plus
the cross-file rules R7-R13 (layering, lock order, taxonomy exhaustiveness,
metric-doc drift, ladder exhaustiveness, series-metric linkage, strong ID
parameters). Paths may be files or directories (recursed; build*/,
.git/, lint_fixtures/ skipped). With no paths and no manifest, lints
src tools tests bench examples under --root.

options:
  --root=DIR            repository root; manifest/default paths resolve
                        against it and findings are reported relative to it
  --manifest=FILE       lint exactly the files listed (repo-relative paths);
                        the gate's discovery mode - build trees and generated
                        files can never leak into a scan
  --verify-manifest     fail (exit 2) if the manifest disagrees with a fresh
                        source walk, with the missing/extra paths
  --write-manifest=FILE walk sources under --root, write FILE, and exit
  --baseline=FILE       drop findings listed in FILE (accepted pre-existing
                        findings); stale entries are warned to stderr
  --write-baseline=FILE write the current findings as a baseline and exit
  --format=FMT          text (default), json, or sarif
  --output=FILE         write findings to FILE instead of stdout
  --jobs=N              per-file scan threads (default: hardware concurrency)
  --rules=R1,R7         run only the listed rules (default: all)
  --list-rules          print the rule catalog and exit
  -h, --help            this help
)";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

/// Load repo-relative paths into SourceFiles whose .path stays relative, so
/// findings, baselines, and SARIF URIs are stable across checkouts.
std::vector<tamper::lint::SourceFile> load_relative(
    const std::string& root, const std::vector<std::string>& rel_paths,
    std::vector<std::string>& errors) {
  std::vector<tamper::lint::SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::string content;
    if (!read_file(root + "/" + rel, content)) {
      errors.push_back(rel + ": unreadable");
      continue;
    }
    files.push_back({rel, std::move(content)});
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  tamper::lint::Config config;
  std::string root = ".";
  std::string format = "text";
  std::string output;
  std::string manifest_path;
  std::string write_manifest_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool verify_manifest = false;
  int jobs = 0;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) { return arg.substr(std::strlen(flag)); };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--manifest=", 0) == 0) {
      manifest_path = value("--manifest=");
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg.rfind("--write-manifest=", 0) == 0) {
      write_manifest_path = value("--write-manifest=");
    } else if (arg == "--verify-manifest") {
      verify_manifest = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value("--write-baseline=");
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
    } else if (arg.rfind("--output=", 0) == 0) {
      output = value("--output=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(value("--jobs=").c_str());
    } else if (arg.rfind("--rules=", 0) == 0) {
      config.rules = split_csv(value("--rules="));
    } else if (arg == "--list-rules") {
      std::cout << tamper::lint::rule_catalog();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tamperlint: unknown option " << arg << '\n' << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "tamperlint: --format must be text, json, or sarif\n";
    return 2;
  }

  std::vector<std::string> errors;
  std::vector<tamper::lint::Finding> findings;

  if (!write_manifest_path.empty()) {
    const std::vector<std::string> walked =
        tamper::lint::walk_sources(root, config, errors);
    for (const auto& err : errors) std::cerr << "tamperlint: " << err << '\n';
    if (!errors.empty()) return 2;
    if (!write_file(write_manifest_path, tamper::lint::format_manifest(walked))) {
      std::cerr << "tamperlint: cannot write " << write_manifest_path << '\n';
      return 2;
    }
    std::cerr << "tamperlint: wrote " << walked.size() << " paths to "
              << write_manifest_path << '\n';
    return 0;
  }

  if (!paths.empty() && manifest_path.empty()) {
    // Legacy/ad-hoc mode: explicit files or directory trees, reported with
    // the paths as given.
    findings = tamper::lint::lint_paths(paths, config, errors);
  } else {
    std::vector<std::string> rel_paths;
    if (!manifest_path.empty()) {
      std::string text;
      if (!read_file(manifest_path, text)) {
        std::cerr << "tamperlint: cannot read manifest " << manifest_path << '\n';
        return 2;
      }
      rel_paths = tamper::lint::parse_manifest(text);
      if (verify_manifest) {
        const std::vector<std::string> walked =
            tamper::lint::walk_sources(root, config, errors);
        bool drift = false;
        for (const std::string& p : walked)
          if (std::find(rel_paths.begin(), rel_paths.end(), p) == rel_paths.end()) {
            std::cerr << "tamperlint: source not in manifest: " << p << '\n';
            drift = true;
          }
        for (const std::string& p : rel_paths)
          if (std::find(walked.begin(), walked.end(), p) == walked.end()) {
            std::cerr << "tamperlint: manifest entry missing on disk: " << p << '\n';
            drift = true;
          }
        if (drift) {
          std::cerr << "tamperlint: manifest drift — regenerate with "
                       "--write-manifest="
                    << manifest_path << '\n';
          return 2;
        }
      }
    } else {
      rel_paths = tamper::lint::walk_sources(root, config, errors);
    }
    std::vector<tamper::lint::SourceFile> files =
        load_relative(root, rel_paths, errors);
    // The metric inventory doc participates in R10 even though it is not a
    // lintable source; pull it in when present.
    std::string doc;
    if (!config.metric_doc_path.empty() &&
        read_file(root + "/" + config.metric_doc_path, doc))
      files.push_back({config.metric_doc_path, std::move(doc)});
    findings = tamper::lint::lint_repo(files, config, jobs);
  }

  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path, tamper::lint::format_baseline(findings))) {
      std::cerr << "tamperlint: cannot write " << write_baseline_path << '\n';
      return 2;
    }
    std::cerr << "tamperlint: wrote " << findings.size() << " entries to "
              << write_baseline_path << '\n';
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "tamperlint: cannot read baseline " << baseline_path << '\n';
      return 2;
    }
    const auto baseline = tamper::lint::parse_baseline(text, errors);
    const auto stale = tamper::lint::apply_baseline(findings, baseline);
    for (const auto& e : stale)
      std::cerr << "tamperlint: stale baseline entry (finding fixed — delete it): "
                << e.rule << '\t' << e.path << '\t' << e.message << '\n';
  }

  std::string rendered;
  if (format == "json") {
    rendered = tamper::lint::format_json(findings);
  } else if (format == "sarif") {
    rendered = tamper::lint::format_sarif(findings);
  } else {
    rendered = tamper::lint::format_text(findings);
    if (!findings.empty())
      rendered += std::to_string(findings.size()) +
                  " finding(s). Suppress a deliberate exception with "
                  "`// tamperlint-allow(RN): reason`.\n";
  }
  if (output.empty()) {
    std::cout << rendered;
  } else if (!write_file(output, rendered)) {
    std::cerr << "tamperlint: cannot write " << output << '\n';
    return 2;
  }
  for (const auto& err : errors) std::cerr << "tamperlint: " << err << '\n';

  if (!errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
