// tamperlint — run the repo's contract lint (see src/lint/lint.h for the
// rule catalog). Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

constexpr const char* kUsage = R"(usage: tamperlint [options] [path...]

Runs libtamper's contract lint over C++ sources. Paths may be files or
directories (recursed; build*/, .git/, lint_fixtures/ skipped). With no
paths, lints src tools tests bench examples under --root.

options:
  --root=DIR        repository root to resolve default paths against (default .)
  --format=FMT      text (default) or json
  --rules=R1,R3     run only the listed rules (default: all)
  --list-rules      print the rule catalog and exit
  -h, --help        this help
)";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tamper::lint::Config config;
  std::string root = ".";
  std::string format = "text";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) { return arg.substr(std::strlen(flag)); };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
    } else if (arg.rfind("--rules=", 0) == 0) {
      config.rules = split_csv(value("--rules="));
    } else if (arg == "--list-rules") {
      std::cout << tamper::lint::rule_catalog();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tamperlint: unknown option " << arg << '\n' << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (format != "text" && format != "json") {
    std::cerr << "tamperlint: --format must be text or json\n";
    return 2;
  }
  if (paths.empty())
    for (const char* dir : {"src", "tools", "tests", "bench", "examples"})
      paths.push_back(root + "/" + dir);

  std::vector<std::string> errors;
  const auto findings = tamper::lint::lint_paths(paths, config, errors);

  if (format == "json") {
    std::cout << tamper::lint::format_json(findings);
  } else {
    std::cout << tamper::lint::format_text(findings);
    if (!findings.empty())
      std::cout << findings.size()
                << " finding(s). Suppress a deliberate exception with "
                   "`// tamperlint-allow(RN): reason`.\n";
  }
  for (const auto& err : errors) std::cerr << "tamperlint: " << err << '\n';

  if (!errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
