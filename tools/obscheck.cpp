// obscheck — tiny validator CLI for the observability output formats.
//
//   obscheck prom <file>        Prometheus text exposition v0.0.4
//   obscheck trace <file>       Chrome trace-event JSON (Perfetto-loadable)
//   obscheck timeseries <file>  `tamper-timeseries/1` longitudinal dump
//
// Exit 0 when the file parses, 1 with a one-line diagnostic when it does
// not, 2 on usage/IO errors. This is the parser half of the CI obs smoke
// gate (tools/obs_smoke.sh): it re-reads real `tamperscope watch` output
// through obs/validate, so the emission contract is enforced end to end
// rather than only against in-process strings in tests/test_obs.cpp.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/validate.h"

int main(int argc, char** argv) {
  const std::string kind = argc == 3 ? argv[1] : "";
  if (kind != "prom" && kind != "trace" && kind != "timeseries") {
    std::cerr << "usage: obscheck <prom|trace|timeseries> <file>\n";
    return 2;
  }
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::cerr << "obscheck: cannot open " << argv[2] << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const tamper::obs::Validation v =
      kind == "prom"    ? tamper::obs::validate_prometheus_text(text)
      : kind == "trace" ? tamper::obs::validate_chrome_trace(text)
                        : tamper::obs::validate_timeseries_json(text);
  if (!v.ok) {
    std::cerr << "obscheck: " << argv[2] << ":" << v.line << ": " << v.error << '\n';
    return 1;
  }
  if (kind == "prom")
    std::cout << argv[2] << ": ok (" << v.families << " families, " << v.samples
              << " samples)\n";
  else if (kind == "trace")
    std::cout << argv[2] << ": ok (" << v.samples << " events)\n";
  else
    std::cout << argv[2] << ": ok (" << v.families << " series, " << v.samples
              << " points)\n";
  return 0;
}
