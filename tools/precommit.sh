#!/usr/bin/env bash
# Pre-commit hook: the fast lint gate only (no sanitizer builds). Install:
#
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
#
# Commits that touch no lintable surface — sources, DESIGN.md (R10's
# metric inventory), or the gate's own manifest/baseline — skip the gate
# entirely. Anything else runs the full manifest+baseline form: the
# cross-file pass is what catches a retyped header signature firing
# R7/R13 in files the commit never touched, so there is no cheaper form
# for header changes.
set -euo pipefail
cd "$(dirname "$(readlink -f "$0")")/.."

staged=$(git diff --cached --name-only --diff-filter=ACMRD)
if [ -n "$staged" ] && ! grep -qE \
    '\.(h|cpp)$|^DESIGN\.md$|^tools/tamperlint\.(manifest|baseline)$' \
    <<<"$staged"; then
  echo "pre-commit: no lintable surface staged; skipping lint gate"
  exit 0
fi
# The gate lints the working tree, not the staged snapshot; with partially
# staged sources its verdict may not describe the commit being recorded.
if ! git diff --quiet -- '*.h' '*.cpp' 2>/dev/null; then
  echo "pre-commit: warning: unstaged source edits present; the lint gate" >&2
  echo "pre-commit: checks the working tree, not the staged snapshot" >&2
fi
exec tools/check.sh --lint-only
