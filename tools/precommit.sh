#!/usr/bin/env bash
# Pre-commit hook: the fast lint gate only (no sanitizer builds). Install:
#
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
exec "$(dirname "$(readlink -f "$0")")/check.sh" --lint-only
