#!/usr/bin/env bash
# Sanitizer gate: build everything with ASan+UBSan and run the full test
# suite, including the hostile-input fault campaigns (tests/test_faults.cpp).
# Intended for CI and for local use before merging ingest-path changes:
#
#   tools/check.sh                  # full suite under ASan+UBSan
#   tools/check.sh -R Fault         # just the fault-injection campaigns
#
# Extra arguments are forwarded to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitize}
JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

cmake -B "$BUILD_DIR" -S . \
  -DTAMPER_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTAMPER_BUILD_BENCH=OFF \
  -DTAMPER_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=0:abort_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
echo "sanitizer check passed"
