#!/usr/bin/env bash
# Multi-sanitizer gate: build everything under the selected sanitizer and
# run the full test suite, including the hostile-input fault campaigns
# (tests/test_faults.cpp) and the service chaos campaigns
# (tests/test_service.cpp). Intended for CI and for local use before
# merging ingest-path or concurrency changes:
#
#   tools/check.sh                         # ASan+UBSan (default)
#   tools/check.sh --sanitizer=thread      # TSan (data-race gate)
#   tools/check.sh --sanitizer=all         # both, sequentially
#   tools/check.sh --sanitizer=thread -R Service   # subset of tests
#   tools/check.sh --lint-only             # fast path: tamperlint gate only
#
# --lint-only skips the sanitizer builds entirely: it builds just the
# tamperlint binary (reusing an existing build tree when one is present)
# and runs the manifest+baseline gate — seconds, not minutes, so it works
# as a pre-commit hook:
#
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
#
# Extra arguments are forwarded to ctest. Build trees are kept per
# sanitizer (build-sanitize-<mode>) so switching modes never causes a full
# rebuild of the other.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}
SANITIZER=address
LINT_ONLY=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --sanitizer=*) SANITIZER="${arg#--sanitizer=}" ;;
    --lint-only) LINT_ONLY=1 ;;
    --help|-h)
      sed -n '2,23p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) ARGS+=("$arg") ;;
  esac
done

if [ "$LINT_ONLY" = 1 ]; then
  # Reuse whichever configured tree already exists (its compile_commands.json
  # and object cache make the tamperlint build incremental); fall back to a
  # minimal dedicated tree so the fast path never triggers a full build.
  lint_build=""
  for candidate in "${BUILD_DIR:-}" build build-sanitize-address build-lint; do
    [ -n "$candidate" ] && [ -f "$candidate/CMakeCache.txt" ] || continue
    lint_build="$candidate"
    break
  done
  if [ -z "$lint_build" ]; then
    lint_build=build-lint
    cmake -B "$lint_build" -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DTAMPER_BUILD_TESTS=OFF \
      -DTAMPER_BUILD_BENCH=OFF \
      -DTAMPER_BUILD_EXAMPLES=OFF >/dev/null
  fi
  cmake --build "$lint_build" -j "$JOBS" --target tamperlint >/dev/null
  "$lint_build"/tools/tamperlint --root . \
    --manifest tools/tamperlint.manifest \
    --verify-manifest \
    --baseline tools/tamperlint.baseline
  echo "== lint gate passed (build dir: $lint_build) =="
  exit 0
fi

run_mode() {
  local mode="$1"
  shift
  local build_dir=${BUILD_DIR:-build-sanitize-$mode}
  echo "== sanitizer gate: $mode (build dir: $build_dir) =="
  cmake -B "$build_dir" -S . \
    -DTAMPER_SANITIZE="$mode" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTAMPER_BUILD_BENCH=OFF \
    -DTAMPER_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j "$JOBS"

  case "$mode" in
    address)
      export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=0:abort_on_error=1}
      export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
      ;;
    thread)
      # second_deadlock_stack gives both sides of lock-order reports.
      export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}
      ;;
  esac
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" "$@"
  # End-to-end observability smoke under the same sanitizer: real watch
  # runs (clean + SIGTERM drain) with every emitted file re-parsed.
  tools/obs_smoke.sh "$build_dir"
  echo "== sanitizer gate passed: $mode =="
}

case "$SANITIZER" in
  address|thread)
    run_mode "$SANITIZER" "${ARGS[@]+"${ARGS[@]}"}"
    ;;
  all)
    run_mode address "${ARGS[@]+"${ARGS[@]}"}"
    run_mode thread "${ARGS[@]+"${ARGS[@]}"}"
    ;;
  *)
    echo "error: unknown --sanitizer=$SANITIZER (expected address, thread, or all)" >&2
    exit 2
    ;;
esac
