// Figure 10 (Appendix B): signature consistency for repeated visits by the
// same (client IP, domain) pair. Workload: a pool of pinned client/domain
// pairs, each revisited several times across the window, with path loss so
// tear-down packets occasionally go missing (the single-RST <-> multi-RST
// flaps the paper observes).
#include <iostream>
#include <vector>

#include "analysis/pipeline.h"
#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t pairs = bench::bench_connections(argc, argv, 30'000);
  constexpr int kVisitsPerPair = 4;

  world::WorldConfig world_cfg;
  world_cfg.seed = 99;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = 0x0f19;
  traffic.loss_rate = 0.012;  // elevated loss to surface signature flaps
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);

  common::Rng rng(0xfa11);
  for (std::size_t p = 0; p < pairs; ++p) {
    const int country = world.sample_country(rng);
    const world::AsInfo& as_info =
        world.geo().sample_as(world.country(country).code, rng);
    world::VisitPin pin;
    pin.asn = as_info.asn;
    pin.ipv6 = rng.chance(world.country(country).ipv6_share);
    pin.client_ip = world.geo().sample_client_ip(as_info, *pin.ipv6, rng);
    pin.protocol = rng.chance(world.country(country).http_share)
                       ? appproto::AppProtocol::kHttp
                       : appproto::AppProtocol::kTls;
    pin.client_kind = tcp::ClientKind::kNormal;
    // Bias the pair pool toward blocked content so the tampered cells of
    // the matrix are populated.
    pin.domain_rank = rng.chance(0.5) ? world.sample_blocked_domain(country, rng)
                                      : world.domains().sample_request(rng);
    for (int visit = 0; visit < kVisitsPerPair; ++visit) {
      const common::SimTime t =
          traffic.window_start +
          rng.uniform(0.0, traffic.window_end - traffic.window_start);
      auto conn = generator.generate_pinned(country, t, pin);
      pipeline.ingest(conn.sample);
    }
  }

  common::print_banner(std::cout,
                       "Figure 10 — first vs next signature per (IP, domain) pair");
  std::cout << "workload: " << pairs << " pairs x " << kVisitsPerPair << " visits\n\n";

  const analysis::OverlapMatrix& overlap = pipeline.overlap();
  // The paper's matrix covers the Post-PSH signatures plus Not Tampering.
  std::vector<std::size_t> states;
  std::vector<std::string> labels;
  states.push_back(analysis::OverlapMatrix::kStates - 1);
  labels.push_back("Clean");
  for (core::Signature sig : core::all_signatures()) {
    if (core::stage_of(sig) == core::Stage::kPostPsh) {
      states.push_back(static_cast<std::size_t>(sig));
      labels.push_back(std::string(core::name(sig)));
    }
  }

  std::vector<std::string> header = {"first \\ next"};
  for (const auto& label : labels) header.push_back(label);
  common::TextTable table(header);
  double diagonal_mass = 0.0;
  double total_mass = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    std::uint64_t row_total = 0;
    for (std::size_t j = 0; j < states.size(); ++j)
      row_total += overlap.count(states[i], states[j]);
    std::vector<std::string> row = {labels[i]};
    for (std::size_t j = 0; j < states.size(); ++j) {
      const double frac =
          row_total == 0
              ? 0.0
              : static_cast<double>(overlap.count(states[i], states[j])) /
                    static_cast<double>(row_total);
      row.push_back(common::TextTable::num(frac, 2));
      if (i == j) diagonal_mass += frac;
      total_mass += frac;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nmean diagonal fraction: "
            << common::TextTable::num(diagonal_mass / static_cast<double>(states.size()), 2)
            << "\nExpected shape (paper): strong diagonal (pairs see the same\n"
               "signature again); off-diagonal mass concentrated between single-RST\n"
               "and multi-RST variants of the same injector (lost tear-down packets,\n"
               "residual blocking).\n";
  return 0;
}
