// Table 3: coverage of active-measurement test lists over the domains we
// passively observed being tampered with (Post-PSH matches), per region —
// exact (eTLD+1) membership and the best-case substring rows.
#include <iostream>
#include <map>
#include <set>

#include "analysis/testlists.h"
#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 600'000);
  const auto run = bench::run_global_scenario(n);
  bench::print_header("Table 3 — test-list coverage of observed tampered domains", run);

  const std::uint64_t threshold = std::max<std::uint64_t>(2, n / 300'000);
  const auto& categories = run.pipeline->categories();

  // Observed tampered-domain sets per region (+ a pooled Global set).
  std::vector<std::string> regions = bench::focus_regions();
  std::map<std::string, std::vector<std::string>> observed;
  std::set<std::string> global_set;
  for (const auto& cc : categories.countries()) {
    auto domains = categories.tampered_domains(cc, threshold);
    global_set.insert(domains.begin(), domains.end());
    observed[cc] = std::move(domains);
  }
  std::vector<std::string> global_observed(global_set.begin(), global_set.end());

  analysis::TestListBuilder builder(*run.world, 0xfeed);
  std::vector<analysis::TestList> battery = builder.standard_battery();
  const analysis::TestList* greatfire = &battery[8];
  const analysis::TestList* citizenlab = &battery[10];
  battery.push_back(analysis::TestListBuilder::union_of("Union: CL + GreatFire",
                                                        {citizenlab, greatfire}));
  {
    std::vector<const analysis::TestList*> all;
    for (std::size_t i = 0; i + 1 < battery.size(); ++i) all.push_back(&battery[i]);
    battery.push_back(analysis::TestListBuilder::union_of("Union: All lists", all));
  }

  std::vector<std::string> header = {"List", "#Entries", "Global"};
  for (const auto& cc : regions) header.push_back(cc);
  common::TextTable table(header);

  auto add_rows = [&](const analysis::TestList& list, bool substring) {
    std::vector<std::string> row;
    row.push_back(substring ? "Substring: " + list.name : list.name);
    row.push_back(substring ? "-" : common::TextTable::num(std::uint64_t{list.entries.size()}));
    auto coverage_cell = [&](const std::vector<std::string>& domains) {
      const analysis::Coverage c = analysis::audit_coverage(list, domains);
      return common::TextTable::pct(substring ? c.substring_pct() : c.exact_pct());
    };
    row.push_back(coverage_cell(global_observed));
    for (const auto& cc : regions) row.push_back(coverage_cell(observed[cc]));
    table.add_row(std::move(row));
  };

  for (const auto& list : battery) add_rows(list, /*substring=*/false);
  add_rows(battery[battery.size() - 2], /*substring=*/true);  // CL + GreatFire
  add_rows(battery.back(), /*substring=*/true);               // All lists
  table.print(std::cout);

  std::cout << "\nObserved tampered domains: Global=" << global_observed.size();
  for (const auto& cc : regions) std::cout << " " << cc << "=" << observed[cc].size();
  std::cout << "\n\nExpected shape (paper): curated censorship lists miss most observed\n"
               "domains (CN coverage ~11% for CL+GreatFire); popularity lists do\n"
               "better only at their largest tiers; substring matching raises but\n"
               "does not complete coverage.\n";
  return 0;
}
