// Baseline comparison: active test-list probing vs passive observation —
// the paper's central thesis quantified on ground truth.
//
// The active baseline models a Censored-Planet/OONI-style campaign: probe
// every entry of a test list from vantage points in a set of countries,
// once per day. It discovers (country, domain) blocking pairs only for
// domains on its list and only in countries where it has a vantage point.
// The passive system observes whatever real clients request, everywhere.
#include <iostream>
#include <set>

#include "analysis/pipeline.h"
#include "analysis/testlists.h"
#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 400'000);
  world::WorldConfig world_cfg;
  world_cfg.seed = 0xac7e;
  world::World world(world_cfg);

  // ---- Passive side: the paper's pipeline over sampled real traffic ----
  world::TrafficConfig traffic;
  traffic.seed = 0x9a55;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);
  pipeline.run(generator, n);
  const std::uint64_t threshold = std::max<std::uint64_t>(2, n / 150'000);

  std::set<std::pair<std::string, std::string>> passive_pairs;  // (country, domain)
  for (const auto& cc : pipeline.categories().countries()) {
    if (cc == "??") continue;
    for (const auto& domain : pipeline.categories().tampered_domains(cc, threshold))
      passive_pairs.emplace(cc, domain);
  }

  // ---- Active side: list-driven probing from vantage-point countries ----
  // Vantage points are procurable in well-connected countries; the paper's
  // §2.2 point is that exactly the censored regions are the hard ones.
  const std::vector<std::string> vantage_countries = {"US", "DE", "RU", "IN", "BR",
                                                      "TR", "MX", "KR", "TH", "UA"};
  analysis::TestListBuilder builder(world, 0x11);
  const analysis::TestList citizenlab = builder.citizenlab();
  const analysis::TestList greatfire = builder.greatfire_all();
  const analysis::TestList tranco =
      builder.tranco(world.domains().size() / 100, "Tranco_10K");
  const analysis::TestList probe_list = analysis::TestListBuilder::union_of(
      "CL+GreatFire+Tranco10K", {&citizenlab, &greatfire, &tranco});

  std::set<std::pair<std::string, std::string>> active_pairs;
  for (const auto& cc : vantage_countries) {
    const int country = world::country_index(cc);
    if (country < 0) continue;
    for (const auto& entry : probe_list.entries) {
      const auto rank = world.domains().rank_of(entry);
      if (!rank) continue;
      // An active probe reliably detects blocking when it exists: the
      // limitation is coverage, not sensitivity.
      if (world.is_blocked(country, *rank)) active_pairs.emplace(cc, entry);
    }
  }

  // ---- Ground truth: all (vantage-country, blocked domain) pairs users
  //      actually requested (whether or not anything detected them) ----
  std::set<std::pair<std::string, std::string>> union_found = passive_pairs;
  union_found.insert(active_pairs.begin(), active_pairs.end());
  std::size_t passive_only = 0, active_only = 0, both = 0;
  for (const auto& pair : union_found) {
    const bool in_passive = passive_pairs.contains(pair);
    const bool in_active = active_pairs.contains(pair);
    if (in_passive && in_active)
      ++both;
    else if (in_passive)
      ++passive_only;
    else
      ++active_only;
  }

  common::print_banner(std::cout, "Baseline: active list-probing vs passive observation");
  std::cout << "workload: " << n << " passive connections; active campaign: "
            << probe_list.entries.size() << "-entry list from "
            << vantage_countries.size() << " vantage countries\n\n";
  common::TextTable table({"Metric", "Value"});
  table.add_row({"(country, domain) pairs found passively",
                 common::TextTable::num(std::uint64_t{passive_pairs.size()})});
  table.add_row({"pairs found by the active campaign",
                 common::TextTable::num(std::uint64_t{active_pairs.size()})});
  table.add_row({"found by both", common::TextTable::num(std::uint64_t{both})});
  table.add_row({"passive-only (active missed: not on list / no vantage)",
                 common::TextTable::num(std::uint64_t{passive_only})});
  table.add_row({"active-only (passive missed: no user requested it)",
                 common::TextTable::num(std::uint64_t{active_only})});
  table.print(std::cout);

  // Per-country view: passive reaches countries with no vantage point.
  std::set<std::string> passive_countries, active_countries;
  for (const auto& [cc, domain] : passive_pairs) passive_countries.insert(cc);
  for (const auto& [cc, domain] : active_pairs) active_countries.insert(cc);
  std::cout << "\ncountries with detected tampering:  passive=" << passive_countries.size()
            << "  active=" << active_countries.size()
            << " (capped by vantage points)\n"
            << "\nExpected shape (the paper's thesis, §1/§6): the two are\n"
               "complementary — active enumerates block-lists beyond user demand,\n"
               "passive sees every network without vantage points and everything\n"
               "users actually hit, including domains missing from every list.\n";
  return 0;
}
