// Figure 5: per-AS match proportions for the ASes carrying the top 80% of
// each country's connections. Centralized censorship systems (CN, IR) show
// tight ranges across ASes; decentralized ones (RU, UA, PK, MX) spread wide.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Figure 5 — per-AS view of tampering", run);
  const analysis::AsnAggregator& asns = run.pipeline->asns();

  common::TextTable table({"Country", "#AS (top 80%)", "min %", "median %", "max %",
                           "range", "per-AS match % (largest AS first)"});
  for (const auto& cc : bench::fig4_country_order()) {
    const auto top = asns.top_ases(cc, 0.8);
    if (top.empty()) continue;
    std::vector<double> rates;
    std::string detail;
    for (const auto& stats : top) {
      rates.push_back(stats.match_percent());
      if (detail.size() < 60) {
        detail += common::TextTable::num(stats.match_percent(), 0) + " ";
      }
    }
    std::vector<double> sorted = rates;
    std::sort(sorted.begin(), sorted.end());
    const double min = sorted.front();
    const double max = sorted.back();
    const double median = sorted[sorted.size() / 2];
    table.add_row({cc, common::TextTable::num(std::uint64_t{top.size()}),
                   common::TextTable::num(min, 1), common::TextTable::num(median, 1),
                   common::TextTable::num(max, 1), common::TextTable::num(max - min, 1),
                   detail});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): small ranges for centralized systems\n"
               "(CN, IR, TM, CU); wide ranges for decentralized ones (RU, UA, PK, MX)\n"
               "and for corporate-firewall countries (US, GB, DE).\n";
  return 0;
}
