// Ablation studies for the design choices DESIGN.md §5 calls out. Not a
// paper table — this quantifies why the paper's methodology decisions
// matter, using ground truth the real deployment never had:
//
//   A1  order reconstruction: classify scrambled 1-second logs with and
//       without flag/seq-based reconstruction
//   A2  the 3-second inactivity threshold: sweep 1..10 s
//   A3  the 10-packet budget: sweep first-N packets logged
//   A4  timestamp granularity: 1 s vs millisecond logging
//   A5  upstream DDoS scrubbing: Post-SYN inflation when floods reach the tap
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "core/classifier.h"

using namespace tamper;

namespace {

struct Corpus {
  std::vector<world::LabeledConnection> connections;
};

Corpus make_corpus(std::size_t n, world::World& world, world::TrafficConfig traffic) {
  Corpus corpus;
  corpus.connections.reserve(n);
  world::TrafficGenerator generator(world, traffic);
  generator.generate(n, [&](world::LabeledConnection&& conn) {
    corpus.connections.push_back(std::move(conn));
  });
  return corpus;
}

std::optional<core::Signature> classify_sig(const core::SignatureClassifier& classifier,
                                            const capture::ConnectionSample& sample) {
  return classifier.classify(sample).signature;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 60'000);
  world::WorldConfig world_cfg;
  world_cfg.seed = 0xab1a;
  world::World world(world_cfg);

  common::print_banner(std::cout, "Ablation studies (design-choice validation)");
  std::cout << "workload: " << n << " connections per arm\n";

  // ---- A1: order reconstruction under scrambled logs ----
  {
    world::TrafficConfig traffic;
    traffic.seed = 1;
    Corpus corpus = make_corpus(n / 4, world, traffic);
    core::SignatureClassifier reconstructing;
    core::ClassifierConfig no_reconstruct_cfg;
    no_reconstruct_cfg.reconstruct_order = false;
    core::SignatureClassifier arrival_order(no_reconstruct_cfg);
    common::Rng rng(99);

    std::uint64_t total = 0, stable_reconstructed = 0, stable_arrival = 0;
    for (auto& conn : corpus.connections) {
      if (conn.sample.packets.size() < 2) continue;
      const auto reference = classify_sig(reconstructing, conn.sample);
      auto scrambled = conn.sample;
      // Scramble the log order — the degradation the paper's 1 s-granularity
      // logging pipeline exhibits (§3.2). Timestamps stay intact, so the
      // reconstructing classifier can only lose within-second information.
      std::shuffle(scrambled.packets.begin(), scrambled.packets.end(), rng);
      ++total;
      if (classify_sig(reconstructing, scrambled) == reference) ++stable_reconstructed;
      if (classify_sig(arrival_order, scrambled) == reference) ++stable_arrival;
    }
    common::TextTable table({"A1: classifier variant", "agreement with in-order log"});
    table.add_row({"flag/seq reconstruction (paper)",
                   common::TextTable::pct(common::percent(stable_reconstructed, total))});
    table.add_row({"raw arrival order",
                   common::TextTable::pct(common::percent(stable_arrival, total))});
    table.print(std::cout);
    std::cout << "\n";
  }

  // ---- A2: inactivity threshold sweep ----
  {
    world::TrafficConfig traffic;
    traffic.seed = 2;
    Corpus corpus = make_corpus(n / 4, world, traffic);
    common::TextTable table({"A2: inactivity threshold", "possibly tampered %",
                             "ground-truth recall", "timeout false flags on clean"});
    for (std::int64_t threshold : {1, 2, 3, 5, 10}) {
      core::ClassifierConfig cfg;
      cfg.inactivity_seconds = threshold;
      core::SignatureClassifier classifier(cfg);
      std::uint64_t total = 0, possibly = 0, tampered = 0, recalled = 0, clean = 0,
                    clean_timeout = 0;
      for (const auto& conn : corpus.connections) {
        if (conn.sample.packets.empty()) continue;
        ++total;
        const auto c = classifier.classify(conn.sample);
        if (c.possibly_tampered) ++possibly;
        if (conn.truth.tampered) {
          ++tampered;
          if (c.possibly_tampered) ++recalled;
        } else if (conn.truth.client_kind == tcp::ClientKind::kNormal) {
          ++clean;
          if (c.possibly_tampered && c.timeout) ++clean_timeout;
        }
      }
      table.add_row({std::to_string(threshold) + " s",
                     common::TextTable::pct(common::percent(possibly, total)),
                     common::TextTable::pct(common::percent(recalled, tampered)),
                     common::TextTable::pct(common::percent(clean_timeout, clean), 2)});
    }
    table.print(std::cout);
    std::cout << "(the paper's 3 s keeps recall at 100% while clean-connection\n"
                 " timeout flags stay near the keep-alive floor)\n\n";
  }

  // ---- A3: packet budget sweep ----
  {
    common::TextTable table({"A3: packets logged", "possibly tampered %",
                             "signature coverage of possibly tampered"});
    for (std::size_t budget : {4u, 6u, 8u, 10u, 14u}) {
      world::TrafficConfig traffic;
      traffic.seed = 3;  // same traffic, different logging depth
      traffic.max_logged_packets = budget;
      Corpus corpus = make_corpus(n / 6, world, traffic);
      core::ClassifierConfig cfg;
      cfg.max_packets = budget;
      core::SignatureClassifier classifier(cfg);
      std::uint64_t total = 0, possibly = 0, matched = 0;
      for (const auto& conn : corpus.connections) {
        if (conn.sample.packets.empty()) continue;
        ++total;
        const auto c = classifier.classify(conn.sample);
        if (c.possibly_tampered) ++possibly;
        if (c.signature) ++matched;
      }
      table.add_row({std::to_string(budget),
                     common::TextTable::pct(common::percent(possibly, total)),
                     common::TextTable::pct(common::percent(matched, possibly))});
    }
    table.print(std::cout);
    std::cout << "(beyond ~10 packets the verdicts barely move: tampering decides\n"
                 " connections early, which is why the paper's budget suffices)\n\n";
  }

  // ---- A4: timestamp granularity ----
  {
    world::TrafficConfig coarse;
    coarse.seed = 4;
    world::TrafficConfig fine = coarse;
    fine.timestamp_scale = 1000.0;  // millisecond ticks
    Corpus corpus_coarse = make_corpus(n / 4, world, coarse);
    Corpus corpus_fine = make_corpus(n / 4, world, fine);
    core::SignatureClassifier second_clf;
    core::ClassifierConfig ms_cfg;
    ms_cfg.inactivity_seconds = 3000;  // 3 s in millisecond ticks
    core::SignatureClassifier ms_clf(ms_cfg);
    std::uint64_t total = 0, agree = 0;
    for (std::size_t i = 0; i < corpus_coarse.connections.size(); ++i) {
      const auto& a = corpus_coarse.connections[i].sample;
      const auto& b = corpus_fine.connections[i].sample;
      if (a.packets.empty() || b.packets.empty()) continue;
      ++total;
      if (classify_sig(second_clf, a) == classify_sig(ms_clf, b)) ++agree;
    }
    common::TextTable table({"A4: granularity comparison", "value"});
    table.add_row({"verdict agreement, 1 s vs 1 ms logs",
                   common::TextTable::pct(common::percent(agree, total))});
    table.print(std::cout);
    std::cout << "(1-second timestamps lose almost nothing — the paper's §3.2\n"
                 " claim that coarse logging is not a limitation)\n\n";
  }

  // ---- A5: DDoS scrubbing off ----
  {
    world::TrafficConfig scrubbed;
    scrubbed.seed = 5;
    world::TrafficConfig unscrubbed = scrubbed;
    unscrubbed.syn_only_rate = 0.30;  // flood residue reaching the tap
    common::TextTable table(
        {"A5: upstream scrubbing", "Post-SYN share of possibly tampered"});
    for (const auto& [label, cfg] :
         std::vector<std::pair<std::string, world::TrafficConfig>>{
             {"on (paper pipeline)", scrubbed}, {"off (floods reach tap)", unscrubbed}}) {
      Corpus corpus = make_corpus(n / 4, world, cfg);
      core::SignatureClassifier classifier;
      std::uint64_t possibly = 0, post_syn = 0;
      for (const auto& conn : corpus.connections) {
        const auto c = classifier.classify(conn.sample);
        if (!c.possibly_tampered) continue;
        ++possibly;
        if (c.stage == core::Stage::kPostSyn) ++post_syn;
      }
      table.add_row({label, common::TextTable::pct(common::percent(post_syn, possibly))});
    }
    table.print(std::cout);
    std::cout << "(without scrubbing, Post-SYN noise swamps the taxonomy — the\n"
                 " reason §4.2 restricts several analyses to Post-ACK/Post-PSH)\n";
  }
  return 0;
}
