// Shared scaffolding for the experiment harnesses: one function to run the
// global two-week scenario through the analysis pipeline, plus the country
// orderings and paper reference values the harness output is printed against.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "common/table.h"
#include "world/traffic.h"
#include "world/world.h"

namespace tamper::bench {

struct ScenarioRun {
  std::unique_ptr<world::World> world;
  std::unique_ptr<world::TrafficGenerator> generator;
  std::unique_ptr<analysis::Pipeline> pipeline;
  std::size_t connections = 0;
};

/// Build the default world, generate `connections` of the January 2023
/// two-week scenario, and run everything through the analysis pipeline.
inline ScenarioRun run_global_scenario(std::size_t connections,
                                       std::uint64_t seed = 42,
                                       world::TrafficConfig traffic = {}) {
  ScenarioRun run;
  world::WorldConfig world_cfg;
  world_cfg.seed = seed;
  run.world = std::make_unique<world::World>(world_cfg);
  traffic.seed = seed ^ 0xbe7c4;
  run.generator = std::make_unique<world::TrafficGenerator>(*run.world, traffic);
  run.pipeline = std::make_unique<analysis::Pipeline>(*run.world);
  run.pipeline->run(*run.generator, connections);
  run.connections = connections;
  return run;
}

/// Default experiment size; override with argv[1] or TAMPER_BENCH_N.
inline std::size_t bench_connections(int argc, char** argv,
                                     std::size_t fallback = 300'000) {
  if (argc > 1) return std::strtoull(argv[1], nullptr, 10);
  if (const char* env = std::getenv("TAMPER_BENCH_N")) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

/// Fig. 4's country ordering (restricted to countries in the built-in world).
inline const std::vector<std::string>& fig4_country_order() {
  static const std::vector<std::string> kOrder = {
      "TM", "PE", "UZ", "CU", "SA", "KZ", "RU", "PK", "NI", "UA", "BD", "MX",
      "IR", "OM", "DJ", "AZ", "AE", "SD", "CN", "BY", "RW", "EG", "YE", "AF",
      "LA", "MM", "IQ", "KW", "TR", "BH", "ET", "IN", "HN", "ER", "PS", "MY",
      "TH", "KR", "VN", "VE", "GB", "SY", "US", "DE", "KP"};
  return kOrder;
}

/// Fig. 6 / Table 2 / Table 3 focus regions.
inline const std::vector<std::string>& focus_regions() {
  static const std::vector<std::string> kRegions = {"CN", "DE", "GB", "IN", "IR",
                                                    "KR", "MX", "PE", "RU", "US"};
  return kRegions;
}

inline void print_header(const std::string& experiment, const ScenarioRun& run) {
  common::print_banner(std::cout, experiment);
  std::cout << "workload: " << run.connections
            << " sampled connections, two-week window 2023-01-12..26, seed-deterministic\n";
}

}  // namespace tamper::bench
