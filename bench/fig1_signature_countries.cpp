// Figure 1: for each signature, which countries originate its matches.
// The paper's stacked columns become, per signature, the top contributing
// countries with their share of that signature's global matches.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Figure 1 — signature matching across countries", run);
  const analysis::SignatureMatrix& m = run.pipeline->signatures();

  common::TextTable table({"Signature", "Total", "Top origin countries (share of column)"});
  for (core::Signature sig : core::all_signatures()) {
    const std::uint64_t total = m.signature_total(sig);
    std::vector<std::pair<std::string, std::uint64_t>> contributors;
    for (const auto& cc : m.countries()) {
      const std::uint64_t count = m.count(cc, sig);
      if (count > 0) contributors.emplace_back(cc, count);
    }
    std::sort(contributors.begin(), contributors.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::string top;
    for (std::size_t i = 0; i < contributors.size() && i < 6; ++i) {
      if (i > 0) top += "  ";
      top += contributors[i].first + " " +
             common::TextTable::pct(common::percent(contributors[i].second, total), 0);
    }
    table.add_row({std::string(core::name(sig)), common::TextTable::num(total), top});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: Post-SYN timeouts spread globally; SYN;ACK → RST\n"
               "dominated by TM; RST;RST₀ and the multi-RST+ACK bursts concentrated\n"
               "in CN (and KR for RST≠RST); PSH;Data → RST/RST+ACK spread across many\n"
               "countries with UA prominent for the RST+ACK variant.\n";
  return 0;
}
