// Engineering microbenchmarks (google-benchmark): the classifier and its
// substrates must keep up with CDN-scale sampling (the paper's deployment
// samples from 45M requests/second). One binary, standard --benchmark_*
// flags apply; every run also writes a machine-readable BENCH_ingest.json
// (override with --bench-json=PATH) so the perf trajectory is a diffable
// artifact, not a scrollback memory. bench/BENCH_ingest.json holds the
// checked-in seed run to compare against.
//
// The JSON also carries a "derived" block — classify-latency p50/p99 over
// the corpus and the mean logged bytes per connection — so the tail (not
// just the mean google-benchmark reports) and the memory footprint of the
// record format are part of the diffable trajectory.
//
// --bench-compare=PATH [--bench-threshold=PCT] re-reads a previous run
// (e.g. the checked-in seed) after this one and exits nonzero if any
// benchmark's throughput regressed by more than PCT percent (default 15) —
// the CI bench-compare gate.
#include <benchmark/benchmark.h>

#include <algorithm>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/evidence.h"
#include "analysis/pipeline.h"
#include "appproto/http.h"
#include "appproto/tls.h"
#include "capture/sampler.h"
#include "common/bounded_queue.h"
#include "common/json.h"
#include "core/classifier.h"
#include "net/pcap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "world/traffic.h"

using namespace tamper;

namespace {

/// A shared corpus of realistic samples (mix of clean and tampered).
const std::vector<capture::ConnectionSample>& corpus() {
  static const std::vector<capture::ConnectionSample> kCorpus = [] {
    world::World world;
    world::TrafficConfig traffic;
    traffic.seed = 7;
    world::TrafficGenerator generator(world, traffic);
    std::vector<capture::ConnectionSample> samples;
    samples.reserve(4096);
    generator.generate(4096, [&](world::LabeledConnection&& conn) {
      samples.push_back(std::move(conn.sample));
    });
    return samples;
  }();
  return kCorpus;
}

void BM_ClassifySample(benchmark::State& state) {
  const auto& samples = corpus();
  core::SignatureClassifier classifier;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(samples[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifySample);

void BM_OrderPackets(benchmark::State& state) {
  const auto& samples = corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::order_packets(samples[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OrderPackets);

void BM_EvidenceDeltas(benchmark::State& state) {
  const auto& samples = corpus();
  core::SignatureClassifier classifier;
  std::vector<core::Classification> classes;
  classes.reserve(samples.size());
  for (const auto& sample : samples) classes.push_back(classifier.classify(sample));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::evidence_deltas(samples[i], classes[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvidenceDeltas);

void BM_BuildClientHello(benchmark::State& state) {
  common::Rng rng(11);
  appproto::ClientHelloSpec spec;
  spec.sni = "brightmedia12345.com";
  for (auto _ : state) benchmark::DoNotOptimize(appproto::build_client_hello(spec, rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildClientHello);

void BM_ParseClientHelloSni(benchmark::State& state) {
  common::Rng rng(11);
  appproto::ClientHelloSpec spec;
  spec.sni = "brightmedia12345.com";
  const auto hello = appproto::build_client_hello(spec, rng);
  for (auto _ : state) benchmark::DoNotOptimize(appproto::extract_sni(hello));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseClientHelloSni);

void BM_ParseHttpHost(benchmark::State& state) {
  appproto::HttpRequestSpec spec;
  spec.host = "brightmedia12345.com";
  const auto request = appproto::build_http_request(spec);
  for (auto _ : state) benchmark::DoNotOptimize(appproto::extract_host(request));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseHttpHost);

void BM_PacketSerializeParse(benchmark::State& state) {
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kPsh | net::tcpflag::kAck, 1000,
                                         2000, std::vector<std::uint8_t>(200, 0x41));
  pkt.tcp.options.push_back(net::TcpOption::timestamps_opt(1, 2));
  for (auto _ : state) {
    const auto wire = net::serialize(pkt);
    benchmark::DoNotOptimize(net::parse(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSerializeParse);

void BM_SamplerIngest(benchmark::State& state) {
  capture::ConnectionSampler::Config config;
  config.sample_one_in = 10'000;
  capture::ConnectionSampler sampler(config);
  common::Rng rng(3);
  net::Packet syn = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kSyn, 1, 0);
  double now = 0.0;
  for (auto _ : state) {
    syn.src = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    syn.tcp.src_port = static_cast<std::uint16_t>(rng.below(65536));
    now += 1e-5;
    sampler.on_packet(syn, now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerIngest);

void BM_GenerateSession(benchmark::State& state) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 13;
  world::TrafficGenerator generator(world, traffic);
  for (auto _ : state) benchmark::DoNotOptimize(generator.generate_one());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerateSession);

void BM_PcapRoundtrip(benchmark::State& state) {
  const auto& samples = corpus();
  // Build a small pcap in memory from reconstructed packets.
  std::ostringstream out;
  net::PcapWriter writer(out);
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kSyn, 1, 0);
  for (int i = 0; i < 64; ++i) writer.write(pkt);
  const std::string blob = out.str();
  (void)samples;
  for (auto _ : state) {
    std::istringstream in(blob);
    net::PcapReader reader(in);
    std::size_t count = 0;
    while (reader.next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PcapRoundtrip);

/// Shared world for whole-pipeline benches (the pipeline only borrows it).
const world::World& bench_world() {
  static const world::World kWorld;
  return kWorld;
}

// Instrumentation overhead contract (DESIGN.md §9): metrics-only
// instrumentation — what a default `tamperscope watch` run carries — must
// stay within ~2% of the bare pipeline on the classify hot path (one
// relaxed fetch_add per sample, latency histogram sampled 1-in-64). The
// Traced variant adds the opt-in --trace-out span recording (two clock
// reads plus a ring-buffer append per stage) and is expected to cost
// noticeably more; it is benched so that cost stays a measured, documented
// number rather than a surprise. Compare with
// --benchmark_filter=PipelineIngest.
void BM_PipelineIngestBare(benchmark::State& state) {
  const auto& samples = corpus();
  analysis::Pipeline pipeline(bench_world());
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestBare);

void BM_PipelineIngestMetrics(benchmark::State& state) {
  const auto& samples = corpus();
  // The registry is declared before the pipeline: it must outlive it
  // (~Pipeline detaches its registry collector).
  obs::Registry registry;
  analysis::Pipeline pipeline(bench_world());
  pipeline.set_obs(&registry);
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestMetrics);

// Rollup sampling overhead: the metrics pipeline plus the longitudinal
// trends rollup (pipeline.sample_trends) at a checkpoint-boundary cadence.
// The telemetry-plane contract (DESIGN.md §12): amortized over the samples
// between boundaries, rollup sampling must stay within ~2% of the
// metrics-instrumented pipeline — compare against BM_PipelineIngestMetrics
// under --bench-compare.
void BM_PipelineIngestRollup(benchmark::State& state) {
  const auto& samples = corpus();
  obs::Registry registry;
  analysis::Pipeline pipeline(bench_world());
  pipeline.set_obs(&registry);
  // Boundary cadence: one rollup per 512 ingested samples, the same order
  // of magnitude as a `tamperscope watch --checkpoint-every 500` run.
  constexpr std::size_t kRollupEvery = 512;
  std::size_t i = 0;
  std::size_t since_rollup = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
    if (++since_rollup == kRollupEvery) {
      pipeline.sample_trends();
      since_rollup = 0;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestRollup);

void BM_PipelineIngestTraced(benchmark::State& state) {
  const auto& samples = corpus();
  obs::Registry registry;
  obs::Tracer tracer(obs::monotonic_clock());
  analysis::Pipeline pipeline(bench_world());
  pipeline.set_obs(&registry, &tracer);
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestTraced);

// The service queue sits on the hot path between capture and analysis, so
// its per-item cost under producer contention is a first-class number.
// Arg = producer thread count; one consumer drains throughout.
void BM_BoundedQueueThroughput(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    common::BoundedQueue<std::uint64_t> queue(1024, common::QueuePolicy::kBlock);
    constexpr std::uint64_t kPerProducer = 20'000;
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i)
          queue.push(static_cast<std::uint64_t>(p) << 32 | i);
      });
    }
    std::uint64_t sum = 0;
    std::uint64_t remaining = kPerProducer * static_cast<std::uint64_t>(producers);
    while (remaining > 0) {
      if (auto item = queue.pop_wait(std::chrono::milliseconds(100))) {
        sum += *item;
        --remaining;
      }
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kPerProducer) * producers);
  }
}
BENCHMARK(BM_BoundedQueueThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Shed-policy overload: a queue far too small for the offered load, with
// half the items marked low-value. Measures push-side cost when every push
// beyond capacity must select and evict a victim.
void BM_BoundedQueueShedOverload(benchmark::State& state) {
  common::BoundedQueue<std::uint64_t> queue(
      64, common::QueuePolicy::kShed, [](const std::uint64_t& v) { return (v & 1) == 0; });
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.push(i++);
    if ((i & 0xff) == 0)  // occasional consumer keeps the deque churning
      while (queue.try_pop()) {
      }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoundedQueueShedOverload);

/// Post-run derived statistics: the classify latency TAIL (google-benchmark
/// reports means; tampering detection at CDN scale lives and dies by p99)
/// and the logged byte footprint of the record format. All inputs are the
/// seeded corpus, and time comes from the obs clock seam (lint R1).
struct DerivedStats {
  double classify_p50_ns = 0;
  double classify_p99_ns = 0;
  double bytes_per_connection = 0;
};

DerivedStats measure_derived() {
  const auto& samples = corpus();
  DerivedStats d;
  if (samples.empty()) return d;

  core::SignatureClassifier classifier;
  const obs::Clock& clock = obs::monotonic_clock();
  std::vector<double> latencies;
  constexpr int kRounds = 8;  // enough calls that p99 indexes a real tail
  latencies.reserve(samples.size() * kRounds);
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& sample : samples) {
      const std::uint64_t t0 = clock.now_ns();
      benchmark::DoNotOptimize(classifier.classify(sample));
      latencies.push_back(static_cast<double>(clock.now_ns() - t0));
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i];
  };
  d.classify_p50_ns = at(0.50);
  d.classify_p99_ns = at(0.99);

  // The logged record footprint (capture/sample.h): per connection the
  // 5-tuple + observation end (40 bytes), per packet the fixed observed
  // fields (25 bytes) plus the retained payload.
  constexpr std::uint64_t kConnectionOverhead = 40;
  constexpr std::uint64_t kPacketOverhead = 25;
  std::uint64_t bytes = 0;
  for (const auto& sample : samples) {
    bytes += kConnectionOverhead;
    for (const auto& pkt : sample.packets)
      bytes += kPacketOverhead + pkt.payload.size();
  }
  d.bytes_per_connection =
      static_cast<double>(bytes) / static_cast<double>(samples.size());
  return d;
}

/// One row of a previous run's JSON, as much of it as the compare needs.
struct BaselineRow {
  double cpu_ns_per_iter = 0;
  double items_per_second = 0;
};

/// Minimal scanner for the tamper-bench JSON this binary writes (both the
/// v1 and v2 shapes). Not a general JSON parser: names are the first
/// string after `"name":` and numbers are strtod'd in the same object.
std::map<std::string, BaselineRow> parse_baseline(const std::string& text) {
  std::map<std::string, BaselineRow> rows;
  const auto number_after = [&](std::size_t from, std::size_t until,
                                const std::string& key) {
    const std::size_t k = text.find(key, from);
    if (k == std::string::npos || k >= until) return 0.0;
    return std::strtod(text.c_str() + k + key.size(), nullptr);
  };
  std::size_t pos = 0;
  while ((pos = text.find("\"name\": \"", pos)) != std::string::npos) {
    const std::size_t name_begin = pos + 9;
    const std::size_t name_end = text.find('"', name_begin);
    if (name_end == std::string::npos) break;
    const std::size_t object_end = text.find('}', name_end);
    const std::size_t until =
        object_end == std::string::npos ? text.size() : object_end;
    BaselineRow row;
    row.cpu_ns_per_iter = number_after(name_end, until, "\"cpu_ns_per_iter\": ");
    row.items_per_second = number_after(name_end, until, "\"items_per_second\": ");
    rows[text.substr(name_begin, name_end - name_begin)] = row;
    pos = until;
  }
  return rows;
}

/// Collects every finished run and writes them as one JSON document, while
/// forwarding to the normal console reporter (it must be the display
/// reporter — the library refuses a secondary file reporter without
/// --benchmark_out). Times are normalized to nanoseconds per iteration
/// regardless of the benchmark's display unit, so consecutive check-ins
/// diff numerically.
class BenchJsonReporter final : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& context) override {
    cpus_ = context.cpu_info.num_cpus;
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    return console_.ReportContext(context);
  }

  void Finalize() override { console_.Finalize(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double unit_to_ns =
          1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      row.real_ns = run.GetAdjustedRealTime() * unit_to_ns;
      row.cpu_ns = run.GetAdjustedCPUTime() * unit_to_ns;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second.value;
      rows_.push_back(std::move(row));
    }
  }

  bool write(const std::string& path, const DerivedStats& derived) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    common::JsonWriter json(out);
    json.begin_object();
    json.key("schema").value("tamper-bench-v2");
    json.key("cpus").value(static_cast<std::int64_t>(cpus_));
    json.key("derived").begin_object();
    json.key("classify_p50_ns").value(derived.classify_p50_ns);
    json.key("classify_p99_ns").value(derived.classify_p99_ns);
    json.key("bytes_per_connection").value(derived.bytes_per_connection);
    json.end_object();
    json.key("benchmarks").begin_array();
    for (const Row& row : rows_) {
      json.begin_object();
      json.key("name").value(row.name);
      json.key("iterations").value(static_cast<std::uint64_t>(row.iterations));
      json.key("real_ns_per_iter").value(row.real_ns);
      json.key("cpu_ns_per_iter").value(row.cpu_ns);
      if (row.items_per_second > 0)
        json.key("items_per_second").value(row.items_per_second);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << '\n';
    return static_cast<bool>(out.flush());
  }

  /// Compare this run against a previous run's rows. A benchmark regresses
  /// when its throughput fell more than `threshold_pct` below the baseline
  /// (items/second when both runs have it, else inverted cpu ns/iter).
  /// Benchmarks present in only one run are skipped — adding or retiring a
  /// benchmark must not fail the gate. Returns the regression count.
  int compare_against(const std::map<std::string, BaselineRow>& baseline,
                      double threshold_pct) const {
    int regressions = 0;
    for (const Row& row : rows_) {
      const auto it = baseline.find(row.name);
      if (it == baseline.end()) continue;
      double base = it->second.items_per_second;
      double current = row.items_per_second;
      if (base <= 0 || current <= 0) {  // fall back to time per iteration
        if (it->second.cpu_ns_per_iter <= 0 || row.cpu_ns <= 0) continue;
        base = 1.0 / it->second.cpu_ns_per_iter;
        current = 1.0 / row.cpu_ns;
      }
      const double change_pct = (current / base - 1.0) * 100.0;
      if (change_pct < -threshold_pct) {
        ++regressions;
        std::cerr << "REGRESSION " << row.name << ": throughput "
                  << change_pct << "% vs baseline (threshold -"
                  << threshold_pct << "%)\n";
      }
    }
    return regressions;
  }

 private:
  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns = 0;
    double cpu_ns = 0;
    double items_per_second = 0;
  };
  benchmark::ConsoleReporter console_;
  int cpus_ = 0;
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  // Our flags first, so google-benchmark never sees them.
  std::string json_path = "BENCH_ingest.json";
  std::string compare_path;
  double threshold_pct = 15.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--bench-json=";
    constexpr std::string_view kCompareFlag = "--bench-compare=";
    constexpr std::string_view kThresholdFlag = "--bench-threshold=";
    if (arg.rfind(kJsonFlag, 0) == 0)
      json_path = std::string(arg.substr(kJsonFlag.size()));
    else if (arg.rfind(kCompareFlag, 0) == 0)
      compare_path = std::string(arg.substr(kCompareFlag.size()));
    else if (arg.rfind(kThresholdFlag, 0) == 0)
      threshold_pct = std::strtod(arg.substr(kThresholdFlag.size()).data(), nullptr);
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonReporter json_reporter;
  benchmark::RunSpecifiedBenchmarks(&json_reporter);
  benchmark::Shutdown();
  const DerivedStats derived = measure_derived();
  if (!json_path.empty()) {
    if (!json_reporter.write(json_path, derived)) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  if (!compare_path.empty()) {
    std::ifstream in(compare_path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read baseline " << compare_path << '\n';
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto baseline = parse_baseline(buf.str());
    if (baseline.empty()) {
      std::cerr << "baseline " << compare_path << " has no benchmark rows\n";
      return 1;
    }
    const int regressions = json_reporter.compare_against(baseline, threshold_pct);
    if (regressions > 0) {
      std::cerr << regressions << " benchmark(s) regressed more than "
                << threshold_pct << "% vs " << compare_path << '\n';
      return 1;
    }
    std::cout << "no regression beyond " << threshold_pct << "% vs "
              << compare_path << '\n';
  }
  return 0;
}
