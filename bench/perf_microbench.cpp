// Engineering microbenchmarks (google-benchmark): the classifier and its
// substrates must keep up with CDN-scale sampling (the paper's deployment
// samples from 45M requests/second). One binary, standard --benchmark_*
// flags apply; every run also writes a machine-readable BENCH_ingest.json
// (override with --bench-json=PATH) so the perf trajectory is a diffable
// artifact, not a scrollback memory. bench/BENCH_ingest.json holds the
// checked-in seed run to compare against.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/evidence.h"
#include "analysis/pipeline.h"
#include "appproto/http.h"
#include "appproto/tls.h"
#include "capture/sampler.h"
#include "common/bounded_queue.h"
#include "common/json.h"
#include "core/classifier.h"
#include "net/pcap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "world/traffic.h"

using namespace tamper;

namespace {

/// A shared corpus of realistic samples (mix of clean and tampered).
const std::vector<capture::ConnectionSample>& corpus() {
  static const std::vector<capture::ConnectionSample> kCorpus = [] {
    world::World world;
    world::TrafficConfig traffic;
    traffic.seed = 7;
    world::TrafficGenerator generator(world, traffic);
    std::vector<capture::ConnectionSample> samples;
    samples.reserve(4096);
    generator.generate(4096, [&](world::LabeledConnection&& conn) {
      samples.push_back(std::move(conn.sample));
    });
    return samples;
  }();
  return kCorpus;
}

void BM_ClassifySample(benchmark::State& state) {
  const auto& samples = corpus();
  core::SignatureClassifier classifier;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(samples[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifySample);

void BM_OrderPackets(benchmark::State& state) {
  const auto& samples = corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::order_packets(samples[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OrderPackets);

void BM_EvidenceDeltas(benchmark::State& state) {
  const auto& samples = corpus();
  core::SignatureClassifier classifier;
  std::vector<core::Classification> classes;
  classes.reserve(samples.size());
  for (const auto& sample : samples) classes.push_back(classifier.classify(sample));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::evidence_deltas(samples[i], classes[i]));
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvidenceDeltas);

void BM_BuildClientHello(benchmark::State& state) {
  common::Rng rng(11);
  appproto::ClientHelloSpec spec;
  spec.sni = "brightmedia12345.com";
  for (auto _ : state) benchmark::DoNotOptimize(appproto::build_client_hello(spec, rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildClientHello);

void BM_ParseClientHelloSni(benchmark::State& state) {
  common::Rng rng(11);
  appproto::ClientHelloSpec spec;
  spec.sni = "brightmedia12345.com";
  const auto hello = appproto::build_client_hello(spec, rng);
  for (auto _ : state) benchmark::DoNotOptimize(appproto::extract_sni(hello));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseClientHelloSni);

void BM_ParseHttpHost(benchmark::State& state) {
  appproto::HttpRequestSpec spec;
  spec.host = "brightmedia12345.com";
  const auto request = appproto::build_http_request(spec);
  for (auto _ : state) benchmark::DoNotOptimize(appproto::extract_host(request));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseHttpHost);

void BM_PacketSerializeParse(benchmark::State& state) {
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kPsh | net::tcpflag::kAck, 1000,
                                         2000, std::vector<std::uint8_t>(200, 0x41));
  pkt.tcp.options.push_back(net::TcpOption::timestamps_opt(1, 2));
  for (auto _ : state) {
    const auto wire = net::serialize(pkt);
    benchmark::DoNotOptimize(net::parse(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSerializeParse);

void BM_SamplerIngest(benchmark::State& state) {
  capture::ConnectionSampler::Config config;
  config.sample_one_in = 10'000;
  capture::ConnectionSampler sampler(config);
  common::Rng rng(3);
  net::Packet syn = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kSyn, 1, 0);
  double now = 0.0;
  for (auto _ : state) {
    syn.src = net::IpAddress::v4(static_cast<std::uint32_t>(rng.next()));
    syn.tcp.src_port = static_cast<std::uint16_t>(rng.below(65536));
    now += 1e-5;
    sampler.on_packet(syn, now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerIngest);

void BM_GenerateSession(benchmark::State& state) {
  world::World world;
  world::TrafficConfig traffic;
  traffic.seed = 13;
  world::TrafficGenerator generator(world, traffic);
  for (auto _ : state) benchmark::DoNotOptimize(generator.generate_one());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerateSession);

void BM_PcapRoundtrip(benchmark::State& state) {
  const auto& samples = corpus();
  // Build a small pcap in memory from reconstructed packets.
  std::ostringstream out;
  net::PcapWriter writer(out);
  net::Packet pkt = net::make_tcp_packet(net::IpAddress::v4(11, 2, 3, 4), 31337,
                                         net::IpAddress::v4(198, 18, 0, 1), 443,
                                         net::tcpflag::kSyn, 1, 0);
  for (int i = 0; i < 64; ++i) writer.write(pkt);
  const std::string blob = out.str();
  (void)samples;
  for (auto _ : state) {
    std::istringstream in(blob);
    net::PcapReader reader(in);
    std::size_t count = 0;
    while (reader.next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PcapRoundtrip);

/// Shared world for whole-pipeline benches (the pipeline only borrows it).
const world::World& bench_world() {
  static const world::World kWorld;
  return kWorld;
}

// Instrumentation overhead contract (DESIGN.md §9): metrics-only
// instrumentation — what a default `tamperscope watch` run carries — must
// stay within ~2% of the bare pipeline on the classify hot path (one
// relaxed fetch_add per sample, latency histogram sampled 1-in-64). The
// Traced variant adds the opt-in --trace-out span recording (two clock
// reads plus a ring-buffer append per stage) and is expected to cost
// noticeably more; it is benched so that cost stays a measured, documented
// number rather than a surprise. Compare with
// --benchmark_filter=PipelineIngest.
void BM_PipelineIngestBare(benchmark::State& state) {
  const auto& samples = corpus();
  analysis::Pipeline pipeline(bench_world());
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestBare);

void BM_PipelineIngestMetrics(benchmark::State& state) {
  const auto& samples = corpus();
  // The registry is declared before the pipeline: it must outlive it
  // (~Pipeline detaches its registry collector).
  obs::Registry registry;
  analysis::Pipeline pipeline(bench_world());
  pipeline.set_obs(&registry);
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestMetrics);

void BM_PipelineIngestTraced(benchmark::State& state) {
  const auto& samples = corpus();
  obs::Registry registry;
  obs::Tracer tracer(obs::monotonic_clock());
  analysis::Pipeline pipeline(bench_world());
  pipeline.set_obs(&registry, &tracer);
  std::size_t i = 0;
  for (auto _ : state) {
    pipeline.ingest(samples[i]);
    i = (i + 1) % samples.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineIngestTraced);

// The service queue sits on the hot path between capture and analysis, so
// its per-item cost under producer contention is a first-class number.
// Arg = producer thread count; one consumer drains throughout.
void BM_BoundedQueueThroughput(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    common::BoundedQueue<std::uint64_t> queue(1024, common::QueuePolicy::kBlock);
    constexpr std::uint64_t kPerProducer = 20'000;
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i)
          queue.push(static_cast<std::uint64_t>(p) << 32 | i);
      });
    }
    std::uint64_t sum = 0;
    std::uint64_t remaining = kPerProducer * static_cast<std::uint64_t>(producers);
    while (remaining > 0) {
      if (auto item = queue.pop_wait(std::chrono::milliseconds(100))) {
        sum += *item;
        --remaining;
      }
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kPerProducer) * producers);
  }
}
BENCHMARK(BM_BoundedQueueThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Shed-policy overload: a queue far too small for the offered load, with
// half the items marked low-value. Measures push-side cost when every push
// beyond capacity must select and evict a victim.
void BM_BoundedQueueShedOverload(benchmark::State& state) {
  common::BoundedQueue<std::uint64_t> queue(
      64, common::QueuePolicy::kShed, [](const std::uint64_t& v) { return (v & 1) == 0; });
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.push(i++);
    if ((i & 0xff) == 0)  // occasional consumer keeps the deque churning
      while (queue.try_pop()) {
      }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoundedQueueShedOverload);

/// Collects every finished run and writes them as one JSON document, while
/// forwarding to the normal console reporter (it must be the display
/// reporter — the library refuses a secondary file reporter without
/// --benchmark_out). Times are normalized to nanoseconds per iteration
/// regardless of the benchmark's display unit, so consecutive check-ins
/// diff numerically.
class BenchJsonReporter final : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& context) override {
    cpus_ = context.cpu_info.num_cpus;
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    return console_.ReportContext(context);
  }

  void Finalize() override { console_.Finalize(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double unit_to_ns =
          1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      row.real_ns = run.GetAdjustedRealTime() * unit_to_ns;
      row.cpu_ns = run.GetAdjustedCPUTime() * unit_to_ns;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second.value;
      rows_.push_back(std::move(row));
    }
  }

  bool write(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    common::JsonWriter json(out);
    json.begin_object();
    json.key("schema").value("tamper-bench-v1");
    json.key("cpus").value(static_cast<std::int64_t>(cpus_));
    json.key("benchmarks").begin_array();
    for (const Row& row : rows_) {
      json.begin_object();
      json.key("name").value(row.name);
      json.key("iterations").value(static_cast<std::uint64_t>(row.iterations));
      json.key("real_ns_per_iter").value(row.real_ns);
      json.key("cpu_ns_per_iter").value(row.cpu_ns);
      if (row.items_per_second > 0)
        json.key("items_per_second").value(row.items_per_second);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << '\n';
    return static_cast<bool>(out.flush());
  }

 private:
  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns = 0;
    double cpu_ns = 0;
    double items_per_second = 0;
  };
  benchmark::ConsoleReporter console_;
  int cpus_ = 0;
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  // Our flag first, so google-benchmark never sees it.
  std::string json_path = "BENCH_ingest.json";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--bench-json=";
    if (arg.rfind(kFlag, 0) == 0)
      json_path = std::string(arg.substr(kFlag.size()));
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonReporter json_reporter;
  benchmark::RunSpecifiedBenchmarks(&json_reporter);
  benchmark::Shutdown();
  if (json_path.empty()) return 0;
  if (!json_reporter.write(json_path)) {
    std::cerr << "cannot write " << json_path << '\n';
    return 1;
  }
  std::cout << "wrote " << json_path << '\n';
  return 0;
}
