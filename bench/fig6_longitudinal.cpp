// Figure 6: longitudinal Post-ACK + Post-PSH match percentage for the focus
// countries over the two-week window — daily means plus the diurnal
// (night-vs-day) and weekend effects the paper highlights.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/sim_clock.h"
#include "world/countries.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv, 400'000));
  bench::print_header("Figure 6 — Post-ACK/Post-PSH matches over time", run);
  const analysis::TimeSeries& series = run.pipeline->timeseries();

  common::TextTable table({"Country", "mean %", "night % (0-8 local)", "day % (8-24)",
                           "night/day", "weekday %", "weekend %"});
  for (const auto& cc : bench::focus_regions()) {
    const auto& hours = series.country_hours(cc);
    if (hours.empty()) continue;
    const int idx = world::country_index(cc);
    const double utc_offset = idx >= 0 ? world::default_countries()[idx].utc_offset : 0.0;

    std::uint64_t total = 0, matches = 0;
    std::uint64_t night_total = 0, night_matches = 0, day_total = 0, day_matches = 0;
    std::uint64_t wd_total = 0, wd_matches = 0, we_total = 0, we_matches = 0;
    for (const auto& [hour_index, bucket] : hours) {
      const common::SimTime t = static_cast<double>(hour_index) * 3600.0 + 1800.0;
      const double local = common::local_hour(t, utc_offset);
      total += bucket.connections;
      matches += bucket.post_ack_psh_matches;
      if (local < 8.0) {
        night_total += bucket.connections;
        night_matches += bucket.post_ack_psh_matches;
      } else {
        day_total += bucket.connections;
        day_matches += bucket.post_ack_psh_matches;
      }
      if (common::is_weekend(t, utc_offset)) {
        we_total += bucket.connections;
        we_matches += bucket.post_ack_psh_matches;
      } else {
        wd_total += bucket.connections;
        wd_matches += bucket.post_ack_psh_matches;
      }
    }
    const double night = common::percent(night_matches, night_total);
    const double day = common::percent(day_matches, day_total);
    table.add_row({cc, common::TextTable::pct(common::percent(matches, total)),
                   common::TextTable::pct(night), common::TextTable::pct(day),
                   common::TextTable::num(day > 0 ? night / day : 0.0, 2),
                   common::TextTable::pct(common::percent(wd_matches, wd_total)),
                   common::TextTable::pct(common::percent(we_matches, we_total))});
  }
  table.print(std::cout);

  // Daily series for the two strongest censors, as the paper plots them.
  for (const std::string cc : {"CN", "IR"}) {
    std::cout << "\n" << cc << " daily Post-ACK+PSH match %: ";
    const auto& hours = series.country_hours(cc);
    std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> days;
    for (const auto& [hour_index, bucket] : hours) {
      auto& day = days[hour_index / 24];
      day.first += bucket.connections;
      day.second += bucket.post_ack_psh_matches;
    }
    for (const auto& [day, counts] : days)
      std::cout << common::TextTable::num(common::percent(counts.second, counts.first), 1)
                << " ";
    std::cout << "\n";
  }

  std::cout << "\nExpected shape (paper): every country shows a night/day ratio > 1\n"
               "(spikes between midnight and 8am local) and lower weekend rates;\n"
               "CN and IR sit far above US/DE/GB.\n";
  return 0;
}
