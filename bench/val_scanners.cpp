// §4.2 validation: how much scanner/attack noise pollutes the signatures —
// the ZMap share of ⟨SYN → RST⟩, the high-TTL connection share, optionless
// SYNs, and the SYN-with-payload observations from §4.1.
#include <iostream>

#include "appproto/dpi.h"
#include "bench_common.h"
#include "core/scanner.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 300'000);

  // Run manually so we can also inspect raw samples for SYN payloads.
  world::WorldConfig world_cfg;
  world_cfg.seed = 21;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = 0x5ca9;
  world::TrafficGenerator generator(world, traffic);
  analysis::Pipeline pipeline(world);

  std::uint64_t syn80 = 0, syn80_payload = 0, syn443 = 0, syn443_hello = 0;
  generator.generate(n, [&](world::LabeledConnection&& conn) {
    pipeline.ingest(conn.sample);
    for (const auto& pkt : conn.sample.packets) {
      if (!pkt.is_syn()) continue;
      if (conn.sample.server_port == 80) {
        ++syn80;
        if (pkt.payload_len > 0) ++syn80_payload;
      } else if (conn.sample.server_port == 443) {
        ++syn443;
        if (!pkt.payload.empty() && appproto::looks_like_client_hello(pkt.payload))
          ++syn443_hello;
      }
      break;
    }
  });

  common::print_banner(std::cout, "§4.2 validation — scanners and attack noise");
  const auto& s = pipeline.scanner_stats();
  common::TextTable table({"Check", "Measured", "Paper"});
  table.add_row({"connections with optionless SYN",
                 common::TextTable::pct(common::percent(s.no_tcp_options, s.connections), 3),
                 "0% (none found)"});
  table.add_row({"connections with TTL >= 200",
                 common::TextTable::pct(common::percent(s.high_ttl, s.connections), 3),
                 "~0.05%"});
  table.add_row({"SYN→RST matches attributable to ZMap",
                 common::TextTable::pct(common::percent(s.syn_rst_zmap, s.syn_rst_matches)),
                 "~1%"});
  table.add_row({"port-80 SYNs carrying an HTTP payload",
                 common::TextTable::pct(common::percent(syn80_payload, syn80), 2),
                 "38% (one day; 93% to four domains)"});
  table.add_row({"port-443 SYNs carrying a ClientHello",
                 common::TextTable::pct(common::percent(syn443_hello, syn443), 3),
                 "0.02%"});
  table.print(std::cout);

  std::cout << "\nNote: we do not model SYN-payload TCP-amplification floods, so the\n"
               "port-80 SYN-payload row measures ~0 by construction (documented\n"
               "deviation; the paper attributes its 38% spike to four abusive\n"
               "domains on a single day).\n";
  return 0;
}
