// Figure 9 (Appendix A): per-signature match percentage over the two-week
// window — country-concentrated signatures show strong diurnal cycles,
// globally-spread ones (the PSH;Data pair) are flatter.
#include <iostream>
#include <map>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv, 400'000));
  bench::print_header("Figure 9 — per-signature matches over time (global)", run);
  const analysis::TimeSeries& series = run.pipeline->timeseries();

  // Pool all countries into global hourly buckets.
  std::map<std::int64_t, analysis::TimeSeries::HourBucket> global;
  for (const auto& cc : series.countries()) {
    for (const auto& [hour, bucket] : series.country_hours(cc)) {
      auto& g = global[hour];
      g.connections += bucket.connections;
      for (std::size_t s = 0; s < core::kSignatureCount; ++s)
        g.by_signature[s] += bucket.by_signature[s];
    }
  }

  // Noise floor for tiny buckets, scaled to the workload.
  std::uint64_t grand_total = 0;
  for (const auto& [hour, bucket] : global) grand_total += bucket.connections;
  const std::uint64_t floor_conns =
      std::max<std::uint64_t>(25, grand_total / (global.size() * 4 + 1));

  common::TextTable table({"Signature", "mean %", "hourly min %", "hourly max %",
                           "hourly CV", "variability"});
  for (core::Signature sig : core::all_signatures()) {
    const auto idx = static_cast<std::size_t>(sig);
    double min = 1e9, max = 0.0;
    std::uint64_t total = 0, matches = 0;
    common::RunningMoments hourly;
    for (const auto& [hour, bucket] : global) {
      if (bucket.connections < floor_conns) continue;
      const double pct = common::percent(bucket.by_signature[idx], bucket.connections);
      min = std::min(min, pct);
      max = std::max(max, pct);
      total += bucket.connections;
      matches += bucket.by_signature[idx];
      hourly.add(pct);
    }
    if (total == 0) continue;
    // Coefficient of variation of the hourly match rate: high for
    // country-concentrated (diurnal) signatures, low for global ones.
    const double cv = hourly.mean() > 0 ? hourly.stddev() / hourly.mean() : 0.0;
    table.add_row({std::string(core::name(sig)),
                   common::TextTable::pct(common::percent(matches, total), 2),
                   common::TextTable::pct(min, 2), common::TextTable::pct(max, 2),
                   common::TextTable::num(cv, 2), cv > 0.55 ? "diurnal/spiky" : "flat"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): signatures concentrated in a few countries\n"
               "(PSH → RST, SYN → RST, the GFW bursts) swing diurnally; the\n"
               "globally-spread PSH;Data → RST / RST+ACK pair varies least.\n";
  return 0;
}
