// Baseline comparison (§2.3): the signature taxonomy vs a Weaver-et-al.-
// style per-RST forgery detector on identical ground-truth traffic.
//
// Expected result: comparable recall on RST-injection tampering, but the
// forgery detector is structurally blind to drop-based tampering (the
// ⟨... → ∅⟩ signatures) — which is 40+% of real tampering — and says
// nothing about *when* in the connection the tampering happened.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/weaver.h"
#include "middlebox/catalog.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 200'000);
  world::WorldConfig world_cfg;
  world_cfg.seed = 0xba5e;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = 0x11ea;
  world::TrafficGenerator generator(world, traffic);

  core::SignatureClassifier classifier;
  struct MethodStats {
    std::uint64_t tampered = 0;
    std::uint64_t taxonomy_hits = 0;
    std::uint64_t weaver_hits = 0;
    bool drop_based = false;
  };
  std::map<std::string, MethodStats> by_method;
  std::uint64_t clean_normal = 0, taxonomy_clean_flags = 0, weaver_clean_flags = 0;

  common::print_banner(std::cout,
                       "Baseline: signature taxonomy vs Weaver et al. forged-RST tests");
  std::cout << "workload: " << n << " connections\n\n";

  generator.generate(n, [&](world::LabeledConnection&& conn) {
    const auto verdict = classifier.classify(conn.sample);
    const auto weaver = core::weaver_detect(conn.sample);
    if (conn.truth.tampered) {
      MethodStats& stats = by_method[conn.truth.method];
      ++stats.tampered;
      if (verdict.signature) ++stats.taxonomy_hits;
      if (weaver.forged_rst_detected) ++stats.weaver_hits;
      const middlebox::Behavior behavior = middlebox::catalog::by_name(conn.truth.method);
      stats.drop_based = behavior.to_server.empty();
    } else if (conn.truth.client_kind == tcp::ClientKind::kNormal) {
      ++clean_normal;
      if (verdict.signature) ++taxonomy_clean_flags;
      if (weaver.forged_rst_detected) ++weaver_clean_flags;
    }
  });

  common::TextTable table({"Tampering method", "kind", "tampered", "taxonomy recall",
                           "Weaver recall"});
  std::uint64_t inj_total = 0, inj_tax = 0, inj_weaver = 0;
  std::uint64_t drop_total = 0, drop_tax = 0, drop_weaver = 0;
  for (const auto& [method, stats] : by_method) {
    table.add_row({method, stats.drop_based ? "drop" : "inject",
                   common::TextTable::num(stats.tampered),
                   common::TextTable::pct(common::percent(stats.taxonomy_hits, stats.tampered)),
                   common::TextTable::pct(common::percent(stats.weaver_hits, stats.tampered))});
    if (stats.drop_based) {
      drop_total += stats.tampered;
      drop_tax += stats.taxonomy_hits;
      drop_weaver += stats.weaver_hits;
    } else {
      inj_total += stats.tampered;
      inj_tax += stats.taxonomy_hits;
      inj_weaver += stats.weaver_hits;
    }
  }
  table.print(std::cout);

  common::TextTable summary({"Class", "tampered", "taxonomy recall", "Weaver recall"});
  summary.add_row({"RST injection", common::TextTable::num(inj_total),
                   common::TextTable::pct(common::percent(inj_tax, inj_total)),
                   common::TextTable::pct(common::percent(inj_weaver, inj_total))});
  summary.add_row({"packet dropping", common::TextTable::num(drop_total),
                   common::TextTable::pct(common::percent(drop_tax, drop_total)),
                   common::TextTable::pct(common::percent(drop_weaver, drop_total))});
  std::cout << '\n';
  summary.print(std::cout);

  std::cout << "\nfalse-flag rate on clean, normal client connections:\n"
            << "  taxonomy: "
            << common::TextTable::pct(common::percent(taxonomy_clean_flags, clean_normal), 2)
            << "   Weaver: "
            << common::TextTable::pct(common::percent(weaver_clean_flags, clean_normal), 2)
            << "\n\nExpected shape: both near-total on injection; the per-RST forgery\n"
               "tests score ~0% on drop-based tampering (nothing to inspect), which\n"
               "is why the paper needed sequence signatures, not packet tests.\n";
  return 0;
}
