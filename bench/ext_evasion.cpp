// Extension study: the §6 evasive censor vs every detector in this repo.
//
// Expected result: both the signature taxonomy and the Weaver forgery tests
// score ~0% against a censor that drops server->client traffic and
// impersonates the client toward the server — while a conventional censor
// on identical traffic is caught essentially always. The asymmetry is the
// paper's closing argument for why such censors are (fortunately) rare:
// they must hold per-flow state fully in-path.
#include <iostream>

#include "appproto/tls.h"
#include "bench_common.h"
#include "core/weaver.h"
#include "middlebox/catalog.h"
#include "middlebox/evasive.h"
#include "middlebox/middlebox.h"
#include "tcp/session.h"

using namespace tamper;

namespace {

struct Outcome {
  std::uint64_t sessions = 0;
  std::uint64_t taxonomy_detected = 0;
  std::uint64_t weaver_detected = 0;
  std::uint64_t client_got_content = 0;
};

Outcome run_sessions(std::size_t count, bool evasive, std::uint64_t seed) {
  Outcome outcome;
  core::SignatureClassifier classifier;
  common::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    tcp::EndpointConfig client_cfg;
    client_cfg.addr = net::IpAddress::v4(11, 0, 0, 2);
    client_cfg.port = static_cast<std::uint16_t>(rng.range(1025, 65500));
    client_cfg.is_client = true;
    client_cfg.isn = static_cast<std::uint32_t>(rng.next());
    appproto::ClientHelloSpec hello;
    hello.sni = "blocked-target.example";
    common::Rng payload_rng(rng.next());
    client_cfg.request_segments = {appproto::build_client_hello(hello, payload_rng)};

    tcp::EndpointConfig server_cfg;
    server_cfg.addr = net::IpAddress::v4(198, 18, 0, 1);
    server_cfg.port = 443;
    server_cfg.is_client = false;
    server_cfg.isn = static_cast<std::uint32_t>(rng.next());
    server_cfg.response_size = static_cast<std::size_t>(rng.range(800, 6000));

    tcp::SessionConfig session;
    session.start_time = 1'673'600'000.0 + static_cast<double>(i) * 40.0;
    middlebox::TriggerSet triggers;
    triggers.add_exact_domain("blocked-target.example");

    std::unique_ptr<tcp::PathHook> censor;
    if (evasive) {
      censor = std::make_unique<middlebox::EvasiveCensor>(
          std::move(triggers), session.geometry, rng.fork(i));
    } else {
      censor = std::make_unique<middlebox::Middlebox>(
          middlebox::catalog::gfw_mixed_burst(), std::move(triggers), session.geometry,
          rng.fork(i));
    }

    tcp::TcpEndpoint client(client_cfg, rng.fork(i * 2 + 1));
    tcp::TcpEndpoint server(server_cfg, rng.fork(i * 2 + 2));
    client.set_peer(server_cfg.addr, server_cfg.port);
    server.set_peer(client_cfg.addr, client_cfg.port);
    common::Rng session_rng(rng.next());
    const tcp::SessionResult result =
        tcp::simulate_session(client, server, censor.get(), session, session_rng);

    capture::ConnectionSample sample;
    sample.client_ip = client_cfg.addr;
    sample.server_ip = server_cfg.addr;
    sample.client_port = client_cfg.port;
    sample.server_port = server_cfg.port;
    for (const auto& traced : result.server_inbound) {
      if (sample.packets.size() >= 10) break;
      sample.packets.push_back(capture::observe(traced.pkt));
    }
    sample.observation_end_sec = static_cast<std::int64_t>(result.end_time);

    ++outcome.sessions;
    if (classifier.classify(sample).possibly_tampered) ++outcome.taxonomy_detected;
    if (core::weaver_detect(sample).forged_rst_detected) ++outcome.weaver_detected;
    // Did censored content actually reach the client?
    for (const auto& traced : result.full_trace) {
      if (traced.dir == tcp::Direction::kServerToClient && !traced.injected &&
          !traced.pkt.payload.empty()) {
        ++outcome.client_got_content;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 3000);
  common::print_banner(std::cout, "Extension — the §6 evasive censor");
  std::cout << "workload: " << n << " censored sessions per censor type\n\n";

  const Outcome conventional = run_sessions(n, /*evasive=*/false, 0xc0);
  const Outcome evasive = run_sessions(n, /*evasive=*/true, 0xe0);

  common::TextTable table({"Censor", "sessions", "taxonomy detection",
                           "Weaver detection", "content reached client"});
  auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row({label, common::TextTable::num(o.sessions),
                   common::TextTable::pct(common::percent(o.taxonomy_detected, o.sessions)),
                   common::TextTable::pct(common::percent(o.weaver_detected, o.sessions)),
                   common::TextTable::pct(common::percent(o.client_got_content, o.sessions))});
  };
  row("GFW-style RST burst", conventional);
  row("evasive MITM (§6)", evasive);
  table.print(std::cout);

  std::cout << "\nBoth censors block the content (last column ~0%), but the evasive\n"
               "design is invisible to every server-side passive detector — the\n"
               "paper's point about the limits of the technique, and why the\n"
               "required in-path, stateful capability is rarely deployed (§2.1).\n";
  return 0;
}
