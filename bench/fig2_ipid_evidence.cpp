// Figure 2: CDF of the maximum absolute IP-ID change between a tear-down
// packet and the preceding packet, per signature, vs the Not Tampering
// baseline (up to 1,000 IPv4 connections per signature, as in the paper).
#include <iostream>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Figure 2 — IP-ID discontinuity evidence", run);
  const analysis::EvidenceCollector& evidence = run.pipeline->evidence();

  common::TextTable table(
      {"Signature", "n", "frac <= 1", "p50", "p90", "max"});
  auto row = [&](const std::string& label, const common::EmpiricalCdf& cdf) {
    if (cdf.count() == 0) {
      table.add_row({label, "0", "-", "-", "-", "-"});
      return;
    }
    table.add_row({label, common::TextTable::num(std::uint64_t{cdf.count()}),
                   common::TextTable::num(cdf.cdf(1.0), 3),
                   common::TextTable::num(cdf.quantile(0.5), 0),
                   common::TextTable::num(cdf.quantile(0.9), 0),
                   common::TextTable::num(cdf.max(), 0)});
  };

  for (core::Signature sig : core::all_signatures()) {
    // Timeout-only signatures have no tear-down packet to compare.
    if (sig == core::Signature::kSynNone || sig == core::Signature::kAckNone ||
        sig == core::Signature::kPshNone)
      continue;
    row(std::string(core::name(sig)),
        evidence.ipid_cdf(static_cast<std::size_t>(sig)));
  }
  row("Not Tampering", evidence.ipid_cdf(analysis::EvidenceCollector::clean_bucket()));
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): >95% of Not Tampering connections have a\n"
               "max delta <= 1; most signatures show 40-100% large deltas; the\n"
               "exceptions with small deltas are SYN → RST+ACK, SYN;ACK → RST+ACK\n"
               "and PSH;Data → RST+ACK (client-stack resets and IP-ID-copying\n"
               "injectors).\n";
  return 0;
}
