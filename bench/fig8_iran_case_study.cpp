// Figure 8 (§5.6): Iran during the September 2022 protests. A 17-day
// Iran-only timeline with a protest-intensity ramp layered on the baseline
// policy: blocked-content demand and enforcement surge after Sept 13 &
// peak in the local evening; mobile carriers dominate the tampering.
#include <array>
#include <cmath>
#include <iostream>

#include "analysis/pipeline.h"
#include "bench_common.h"
#include "common/sim_clock.h"
#include "world/scenarios.h"

using namespace tamper;



int main(int argc, char** argv) {
  const std::size_t connections = bench::bench_connections(argc, argv, 150'000);
  const world::Scenario scenario = world::iran_protests_2022();
  world::World& world = *scenario.world;
  const world::TrafficConfig& traffic = scenario.traffic;
  const common::SimTime window_start = traffic.window_start;
  const common::SimTime window_end = traffic.window_end;
  const int ir = world::country_index("IR");
  const double utc_offset = world.country(ir).utc_offset;

  world::TrafficGenerator generator = scenario.make_generator();
  analysis::Pipeline pipeline(world);

  // Iran-only timeline: sample times against Iran's diurnal volume.
  common::Rng rng(0x5e9);
  std::uint64_t mobile = 0, mobile_matches = 0, fixed = 0, fixed_matches = 0;
  core::SignatureClassifier classifier;
  for (std::size_t i = 0; i < connections; ++i) {
    common::SimTime t = rng.uniform(window_start, window_end);
    for (int attempt = 0; attempt < 32; ++attempt) {
      if (rng.chance(world.volume_factor(ir, t))) break;
      t = rng.uniform(window_start, window_end);
    }
    auto conn = generator.generate_at(ir, t);
    pipeline.ingest(conn.sample);
    const bool is_mobile = world.geo().as_by_number(conn.truth.asn).mobile;
    const bool match = classifier.classify(conn.sample).signature.has_value();
    (is_mobile ? mobile : fixed) += 1;
    if (match && is_mobile) ++mobile_matches;
    if (match && !is_mobile) ++fixed_matches;
  }

  common::print_banner(std::cout, "Figure 8 — Iran, September 2022 protests");
  std::cout << "workload: " << connections << " IR connections, 2022-09-13..30\n\n";

  const auto& hours = pipeline.timeseries().country_hours("IR");
  common::TextTable table({"Date", "conns", "any-match %", "SYN→RST %", "SYN;ACK→∅ %",
                           "SYN;ACK→RST+ACK %", "evening peak %"});
  std::map<std::int64_t, std::array<std::uint64_t, 5>> days;  // total, match, 3 sigs
  std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> evening;
  for (const auto& [hour_index, bucket] : hours) {
    const common::SimTime t = static_cast<double>(hour_index) * 3600.0;
    const std::int64_t day = static_cast<std::int64_t>((t - window_start) / 86400.0);
    auto& d = days[day];
    d[0] += bucket.connections;
    std::uint64_t all_matches = 0;
    for (std::size_t s = 0; s < core::kSignatureCount; ++s) all_matches += bucket.by_signature[s];
    d[1] += all_matches;
    d[2] += bucket.by_signature[static_cast<std::size_t>(core::Signature::kSynRst)];
    d[3] += bucket.by_signature[static_cast<std::size_t>(core::Signature::kAckNone)];
    d[4] += bucket.by_signature[static_cast<std::size_t>(core::Signature::kAckRstAck)];
    const double local = common::local_hour(t, utc_offset);
    if (local >= 18.0 && local < 24.0) {
      evening[day].first += bucket.connections;
      evening[day].second += all_matches;
    }
  }
  for (const auto& [day, d] : days) {
    table.add_row({common::format_date(window_start + static_cast<double>(day) * 86400.0),
                   common::TextTable::num(d[0]),
                   common::TextTable::pct(common::percent(d[1], d[0])),
                   common::TextTable::pct(common::percent(d[2], d[0])),
                   common::TextTable::pct(common::percent(d[3], d[0])),
                   common::TextTable::pct(common::percent(d[4], d[0])),
                   common::TextTable::pct(
                       common::percent(evening[day].second, evening[day].first))});
  }
  table.print(std::cout);

  std::cout << "\nmobile carriers: " << common::TextTable::pct(common::percent(mobile_matches, mobile))
            << " of mobile connections match vs "
            << common::TextTable::pct(common::percent(fixed_matches, fixed))
            << " on fixed-line ASes (paper: tampering dominated by two mobile ISPs)\n"
            << "Expected shape (paper): match rates ramp sharply after Sept 13,\n"
               "dominated by SYN→RST and post-handshake timeouts/RST+ACKs, with\n"
               "evening peaks; >40% post-handshake timeouts at the height.\n";
  return 0;
}
