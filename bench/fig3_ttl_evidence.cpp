// Figure 3: CDF of the maximum TTL (hop limit) change between a tear-down
// packet and the preceding packet, per signature, vs the baseline.
#include <iostream>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Figure 3 — TTL discontinuity evidence", run);
  const analysis::EvidenceCollector& evidence = run.pipeline->evidence();

  common::TextTable table(
      {"Signature", "n", "frac <= 1", "p10", "p50", "p90", "max"});
  auto row = [&](const std::string& label, const common::EmpiricalCdf& cdf) {
    if (cdf.count() == 0) {
      table.add_row({label, "0", "-", "-", "-", "-", "-"});
      return;
    }
    table.add_row({label, common::TextTable::num(std::uint64_t{cdf.count()}),
                   common::TextTable::num(cdf.cdf(1.0), 3),
                   common::TextTable::num(cdf.quantile(0.1), 0),
                   common::TextTable::num(cdf.quantile(0.5), 0),
                   common::TextTable::num(cdf.quantile(0.9), 0),
                   common::TextTable::num(cdf.max(), 0)});
  };

  for (core::Signature sig : core::all_signatures()) {
    if (sig == core::Signature::kSynNone || sig == core::Signature::kAckNone ||
        sig == core::Signature::kPshNone)
      continue;
    row(std::string(core::name(sig)), evidence.ttl_cdf(static_cast<std::size_t>(sig)));
  }
  row("Not Tampering", evidence.ttl_cdf(analysis::EvidenceCollector::clean_bucket()));
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): >99% of Not Tampering connections show no\n"
               "large TTL change; injection-heavy Post-PSH signatures show large\n"
               "deltas with step-like CDFs (distinct injector TTL constants), and\n"
               "PSH → RST≠RST shows a near-linear spread (the Korean ISP whose RSTs\n"
               "carry random TTLs; its p10-p90 spread below should be wide).\n";
  return 0;
}
