// Table 2: how Post-PSH tampering maps onto content categories per region —
// the top-3 affected categories, their share of the region's tampered
// connections, and the category "coverage" (share of the category's seen
// domains that are tampered).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "world/category.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 600'000);
  const auto run = bench::run_global_scenario(n);
  bench::print_header("Table 2 — Post-PSH tampering by content category", run);

  // The paper thresholds domains at >=100 tampered connections per day at
  // CDN volumes; scale the threshold to this run's sample count.
  const std::uint64_t threshold = std::max<std::uint64_t>(2, n / 300'000);
  std::cout << "domain confidence threshold: >=" << threshold
            << " tampered connections (paper: >=100/day at full CDN volume)\n\n";

  common::TextTable table({"Region", "Top categories", "% of tampered conns",
                           "category coverage"});
  auto add_region = [&](const std::string& cc, const std::string& label) {
    std::map<world::Category, analysis::CategoryAggregator::CategoryStats> stats;
    if (cc == "Global") {
      for (const auto& country : run.pipeline->categories().countries()) {
        for (auto& [cat, s] : run.pipeline->categories().country_stats(country, threshold)) {
          auto& agg = stats[cat];
          agg.tampered_connections += s.tampered_connections;
          agg.tampered_domains.insert(s.tampered_domains.begin(), s.tampered_domains.end());
          agg.seen_domains.insert(s.seen_domains.begin(), s.seen_domains.end());
        }
      }
    } else {
      stats = run.pipeline->categories().country_stats(cc, threshold);
    }
    std::uint64_t total_tampered = 0;
    for (const auto& [cat, s] : stats) total_tampered += s.tampered_connections;
    if (total_tampered == 0) return;

    std::vector<std::pair<world::Category, const analysis::CategoryAggregator::CategoryStats*>>
        ranked;
    for (const auto& [cat, s] : stats) ranked.emplace_back(cat, &s);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second->tampered_connections > b.second->tampered_connections;
    });
    bool first = true;
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
      const auto& [cat, s] = ranked[i];
      const double share = common::percent(s->tampered_connections, total_tampered);
      const double coverage =
          common::percent(s->tampered_domains.size(), s->seen_domains.size());
      table.add_row({first ? label : "", std::string(world::name(cat)),
                     common::TextTable::pct(share, 2), common::TextTable::pct(coverage, 2)});
      first = false;
    }
  };

  add_region("Global", "Global");
  for (const auto& cc : bench::focus_regions()) add_region(cc, cc);
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): Adult Themes / Content Servers / Technology\n"
               "lead globally; CN and IN dominated by Adult Themes (high coverage);\n"
               "IR by Content Servers; KR by Adult Themes + Login Screens; MX/PE by\n"
               "Advertisements; US/GB/DE show tiny coverage but concentrated shares.\n";
  return 0;
}
