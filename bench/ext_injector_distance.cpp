// Extension study: coarse middlebox localization from injected-packet TTLs.
// §3.4 notes the dataset cannot say who tampered; this quantifies how far
// the TTL evidence (Fig. 3) can be pushed toward "where": assuming common
// initial TTL constants, the arrival TTL of a forged packet bounds the
// injector's distance from the server.
#include <iostream>
#include <map>

#include "analysis/injector.h"
#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const std::size_t n = bench::bench_connections(argc, argv, 250'000);
  world::WorldConfig world_cfg;
  world_cfg.seed = 0xd157;
  world::World world(world_cfg);
  world::TrafficConfig traffic;
  traffic.seed = 0x70b0;
  world::TrafficGenerator generator(world, traffic);
  core::SignatureClassifier classifier;

  struct CountryStats {
    std::uint64_t tampered_with_rst = 0;
    std::uint64_t estimable = 0;
    common::EmpiricalCdf relative_position;
  };
  std::map<std::string, CountryStats> by_country;

  generator.generate(n, [&](world::LabeledConnection&& conn) {
    if (!conn.truth.tampered) return;
    const auto verdict = classifier.classify(conn.sample);
    if (verdict.rst_count + verdict.rst_ack_count == 0) return;
    CountryStats& stats = by_country[conn.truth.country];
    ++stats.tampered_with_rst;
    const auto distance = analysis::estimate_injector_distance(conn.sample, verdict);
    if (!distance) return;
    ++stats.estimable;
    stats.relative_position.add(distance->relative_position());
  });

  common::print_banner(std::cout,
                       "Extension — injector localization from TTL evidence");
  std::cout << "workload: " << n << " connections; relative position 1.0 = at the\n"
               "client's access network, 0.0 = at the server\n\n";
  common::TextTable table({"Country", "RST-tampered", "estimable", "p25", "median",
                           "p75"});
  for (const auto& [cc, stats] : by_country) {
    if (stats.relative_position.count() < 40) continue;
    table.add_row({cc, common::TextTable::num(stats.tampered_with_rst),
                   common::TextTable::pct(
                       common::percent(stats.estimable, stats.tampered_with_rst), 0),
                   common::TextTable::num(stats.relative_position.quantile(0.25), 2),
                   common::TextTable::num(stats.relative_position.quantile(0.5), 2),
                   common::TextTable::num(stats.relative_position.quantile(0.75), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: national censors inject mid-path (median ~0.5-0.8);\n"
               "KR's randomized-TTL injector defeats estimation (low estimable %).\n";
  return 0;
}
