// Table 1 + §4.1 narrative numbers: the signature taxonomy as measured on
// the synthetic global scenario — share of possibly-tampered connections,
// stage breakdown, and within-stage signature coverage, printed against the
// paper's reported values.
#include <iostream>

#include "bench_common.h"
#include "core/signature.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Table 1 — tampering signatures (global scenario)", run);
  const analysis::SignatureMatrix& m = run.pipeline->signatures();

  const double possibly_pct = common::percent(m.possibly_tampered(), m.total_connections());
  const double matched_of_possibly = common::percent(m.matched(), m.possibly_tampered());
  std::cout << "\npossibly tampered: " << common::TextTable::pct(possibly_pct)
            << " of all connections   (paper: 25.7%)\n"
            << "signature coverage: " << common::TextTable::pct(matched_of_possibly)
            << " of possibly tampered (paper: 86.9%)\n\n";

  {
    common::TextTable stages(
        {"Stage", "% of possibly tampered", "paper", "% matching a signature", "paper"});
    struct Ref {
      core::Stage stage;
      const char* share;
      const char* coverage;
    };
    const Ref refs[] = {
        {core::Stage::kPostSyn, "43.2%", "99.5%"},
        {core::Stage::kPostAck, "16.1%", "98.7%"},
        {core::Stage::kPostPsh, "5.3%", "97.9%"},
        {core::Stage::kPostData, "33.0%", "69.2%"},
        {core::Stage::kOther, "2.3%", "-"},
    };
    for (const auto& ref : refs) {
      const std::uint64_t possibly = m.stage_possibly(ref.stage);
      const std::uint64_t matched = m.stage_matched(ref.stage);
      stages.add_row({std::string(core::name(ref.stage)),
                      common::TextTable::pct(common::percent(possibly, m.possibly_tampered())),
                      ref.share,
                      common::TextTable::pct(common::percent(matched, possibly)),
                      ref.coverage});
    }
    stages.print(std::cout);
  }

  std::cout << "\nPer-signature match counts:\n";
  common::TextTable table({"Signature", "Stage", "Connections", "% of matches",
                           "% of all connections"});
  for (core::Signature sig : core::all_signatures()) {
    const std::uint64_t count = m.signature_total(sig);
    table.add_row({std::string(core::name(sig)),
                   std::string(core::name(core::stage_of(sig))),
                   common::TextTable::num(count),
                   common::TextTable::pct(common::percent(count, m.matched())),
                   common::TextTable::pct(common::percent(count, m.total_connections()), 2)});
  }
  table.print(std::cout);
  return 0;
}
