// Figure 7: (a) IPv4-vs-IPv6 Post-ACK+PSH match percentage per country with
// the regression slope (paper: 0.92), and (b) TLS-vs-HTTP Post-PSH match
// percentage (paper slope: 0.3, TM as the HTTP-only outlier).
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv, 400'000));
  bench::print_header("Figure 7 — IPv4 vs IPv6 and TLS vs HTTP tampering", run);
  const auto& by_country = run.pipeline->version_protocol().by_country();
  constexpr std::uint64_t kMinSample = 400;  // per-side volume floor

  std::cout << "\n(a) Post-ACK+PSH match % per country, IPv4 vs IPv6\n";
  common::TextTable v46({"Country", "IPv4 %", "IPv6 %", "v6/v4"});
  std::vector<double> xs, ys;
  for (const auto& [cc, split] : by_country) {
    if (cc == "??" || split.v4_total < kMinSample || split.v6_total < kMinSample) continue;
    const double v4 = common::percent(split.v4_matches, split.v4_total);
    const double v6 = common::percent(split.v6_matches, split.v6_total);
    xs.push_back(v4);
    ys.push_back(v6);
    if (v4 >= 1.0 || v6 >= 1.0)
      v46.add_row({cc, common::TextTable::pct(v4), common::TextTable::pct(v6),
                   common::TextTable::num(v4 > 0 ? v6 / v4 : 0.0, 2)});
  }
  v46.print(std::cout);
  const common::Regression r46 = common::linear_regression(xs, ys);
  std::cout << "regression slope: " << common::TextTable::num(r46.slope, 2)
            << " (paper: 0.92; LK below parity, KE roughly double)\n";

  std::cout << "\n(b) Post-PSH match % per country, TLS vs HTTP\n";
  common::TextTable th({"Country", "TLS %", "HTTP %", "http/tls"});
  std::vector<double> tx, ty;
  for (const auto& [cc, split] : by_country) {
    if (cc == "??" || split.tls_total < kMinSample || split.http_total < kMinSample)
      continue;
    const double tls = common::percent(split.tls_psh_matches, split.tls_total);
    const double http = common::percent(split.http_psh_matches, split.http_total);
    tx.push_back(tls);
    ty.push_back(http);
    if (tls >= 0.8 || http >= 0.8)
      th.add_row({cc, common::TextTable::pct(tls), common::TextTable::pct(http),
                  common::TextTable::num(tls > 0 ? http / tls : 0.0, 2)});
  }
  th.print(std::cout);
  const common::Regression rth = common::linear_regression(tx, ty);
  std::cout << "regression slope: " << common::TextTable::num(rth.slope, 2)
            << " (paper: 0.3 — TLS generally more tampered than HTTP;\n"
               " TM is the outlier: >50% HTTP Post-PSH, near-zero TLS)\n";
  return 0;
}
