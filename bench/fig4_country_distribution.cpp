// Figure 4: per-country signature distribution — the percentage of each
// country's connections matching each signature (grouped by stage here for
// readability), in the paper's country ordering.
#include <iostream>

#include "bench_common.h"

using namespace tamper;

int main(int argc, char** argv) {
  const auto run = bench::run_global_scenario(bench::bench_connections(argc, argv));
  bench::print_header("Figure 4 — signature distribution per country", run);
  const analysis::SignatureMatrix& m = run.pipeline->signatures();

  common::TextTable table({"Country", "Connections", "Any match", "Post-SYN", "Post-ACK",
                           "Post-PSH", "Post-Data", "Dominant signature"});
  auto add_country = [&](const std::string& cc) {
    const std::uint64_t total = m.country_connections(cc);
    if (total == 0) return;
    std::uint64_t by_stage[5] = {};
    core::Signature dominant = core::Signature::kSynNone;
    std::uint64_t dominant_count = 0;
    for (core::Signature sig : core::all_signatures()) {
      const std::uint64_t count = m.count(cc, sig);
      by_stage[static_cast<std::size_t>(core::stage_of(sig))] += count;
      if (count > dominant_count) {
        dominant_count = count;
        dominant = sig;
      }
    }
    const std::uint64_t matches = m.country_matches(cc);
    table.add_row(
        {cc, common::TextTable::num(total),
         common::TextTable::pct(common::percent(matches, total)),
         common::TextTable::pct(common::percent(by_stage[0], total)),
         common::TextTable::pct(common::percent(by_stage[1], total)),
         common::TextTable::pct(common::percent(by_stage[2], total)),
         common::TextTable::pct(common::percent(by_stage[3], total)),
         std::string(core::name(dominant)) + " (" +
             common::TextTable::pct(common::percent(dominant_count, total)) + ")"});
  };

  for (const auto& cc : bench::fig4_country_order()) add_country(cc);
  table.print(std::cout);

  std::cout << "\nGlobal: "
            << common::TextTable::pct(
                   common::percent(m.matched(), m.total_connections()))
            << " of all connections match a signature.\n"
            << "Expected shape (paper): TM highest (~84%, dominated by SYN;ACK → RST),\n"
               "then PE/UZ/CU/SA/KZ/RU...; US/DE/GB/KP at the bottom with small but\n"
               "non-zero rates.\n";
  return 0;
}
